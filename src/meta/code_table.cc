#include "meta/code_table.h"

namespace statdb {

Result<CodeTable> CodeTable::FromTable(std::string name, const Table& t) {
  STATDB_ASSIGN_OR_RETURN(size_t code_idx, t.schema().IndexOf("CATEGORY"));
  STATDB_ASSIGN_OR_RETURN(size_t label_idx, t.schema().IndexOf("VALUE"));
  CodeTable ct(std::move(name));
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const Value& code = t.At(r, code_idx);
    const Value& label = t.At(r, label_idx);
    if (code.is_null() || label.is_null()) continue;
    STATDB_ASSIGN_OR_RETURN(int64_t c, code.ToInt());
    STATDB_RETURN_IF_ERROR(ct.AddEntry(c, label.ToString()));
  }
  return ct;
}

Status CodeTable::AddEntry(int64_t code, std::string label) {
  if (decode_.contains(code)) {
    return AlreadyExistsError("duplicate code " + std::to_string(code) +
                              " in code table " + name_);
  }
  encode_[label] = code;
  decode_[code] = std::move(label);
  return Status::OK();
}

Result<std::string> CodeTable::Decode(int64_t code) const {
  auto it = decode_.find(code);
  if (it == decode_.end()) {
    return NotFoundError("code " + std::to_string(code) +
                         " not in code table " + name_);
  }
  return it->second;
}

Result<int64_t> CodeTable::Encode(const std::string& label) const {
  auto it = encode_.find(label);
  if (it == encode_.end()) {
    return NotFoundError("label '" + label + "' not in code table " + name_);
  }
  return it->second;
}

Table CodeTable::ToTable() const {
  Table t{Schema({
      Attribute{"CATEGORY", DataType::kInt64, AttributeKind::kCategory, "",
                false},
      Attribute{"VALUE", DataType::kString, AttributeKind::kValue, "", false},
  })};
  for (const auto& [code, label] : decode_) {
    (void)t.AppendRow({Value::Int(code), Value::Str(label)});
  }
  return t;
}

}  // namespace statdb

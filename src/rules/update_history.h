#ifndef STATDB_RULES_UPDATE_HISTORY_H_
#define STATDB_RULES_UPDATE_HISTORY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/value.h"

namespace statdb {

/// One cell-level change with its undo information.
struct CellChange {
  uint64_t row = 0;
  std::string column;
  Value old_value;
  Value new_value;
};

/// One logical update operation applied to a view, e.g. the outcome of a
/// predicate update, together with everything needed to undo it.
struct UpdateLogEntry {
  uint64_t version = 0;  // view version *after* this update
  std::string description;
  std::vector<CellChange> changes;
};

/// Per-view update history (§3.2): "Keeping a history of updates for each
/// view will enable the DBMS to roll a view back to a previous state
/// should such an action be desired by the analyst. The update history
/// of a view may also be used by other analysts ... rather than
/// repeating the mundane and time consuming data checking operations
/// they can examine what actions were taken by their predecessors."
class UpdateHistory {
 public:
  UpdateHistory() = default;

  /// Records one committed update. `entry.version` must be strictly
  /// increasing.
  Status Append(UpdateLogEntry entry);

  const std::vector<UpdateLogEntry>& entries() const { return entries_; }
  uint64_t latest_version() const {
    return entries_.empty() ? 0 : entries_.back().version;
  }

  /// Entries with version > `since`, oldest first — the "what did my
  /// predecessors clean" query.
  std::vector<const UpdateLogEntry*> EntriesSince(uint64_t since) const;

  /// Undoes every update with version > `target_version`, newest first,
  /// by handing each cell's old value to `undo_cell`. On success the log
  /// is truncated to the target version.
  Status Rollback(
      uint64_t target_version,
      const std::function<Status(const CellChange&)>& undo_cell);

  /// Total cell-level changes recorded (log size proxy).
  uint64_t TotalCellChanges() const;

 private:
  std::vector<UpdateLogEntry> entries_;
};

}  // namespace statdb

#endif  // STATDB_RULES_UPDATE_HISTORY_H_

#include "rules/function_registry.h"

#include <sstream>

#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/order.h"
#include "stats/outliers.h"

namespace statdb {

Result<double> FunctionParams::Get(const std::string& name) const {
  auto it = params_.find(name);
  if (it == params_.end()) {
    return NotFoundError("missing function parameter " + name);
  }
  return it->second;
}

double FunctionParams::GetOr(const std::string& name, double fallback) const {
  auto it = params_.find(name);
  return it == params_.end() ? fallback : it->second;
}

std::string FunctionParams::Encode() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : params_) {
    if (!first) os << ",";
    first = false;
    os << name << "=" << value;
  }
  return os.str();
}

Result<FunctionParams> FunctionParams::Decode(const std::string& encoded) {
  FunctionParams out;
  size_t start = 0;
  while (start < encoded.size()) {
    size_t comma = encoded.find(',', start);
    std::string item = encoded.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return DataLossError("malformed function params: " + encoded);
    }
    out.Set(item.substr(0, eq), std::stod(item.substr(eq + 1)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Status FunctionRegistry::Register(FunctionDescriptor desc) {
  if (functions_.contains(desc.name)) {
    return AlreadyExistsError("function already registered: " + desc.name);
  }
  std::string name = desc.name;
  functions_.emplace(std::move(name), std::move(desc));
  return Status::OK();
}

Result<const FunctionDescriptor*> FunctionRegistry::Find(
    const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return NotFoundError("no function named " + name);
  }
  return &it->second;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(functions_.size());
  for (const auto& [name, desc] : functions_) out.push_back(name);
  return out;
}

Result<SummaryResult> FunctionRegistry::Compute(
    const std::string& function, const std::vector<double>& data,
    const FunctionParams& params) const {
  STATDB_ASSIGN_OR_RETURN(const FunctionDescriptor* desc, Find(function));
  return desc->compute(data, params);
}

namespace {

FunctionDescriptor ScalarFn(
    std::string name, bool order_dependent,
    std::function<Result<double>(const std::vector<double>&,
                                 const FunctionParams&)> fn) {
  FunctionDescriptor d;
  d.name = std::move(name);
  d.order_dependent = order_dependent;
  d.compute = [fn = std::move(fn)](
                  const std::vector<double>& data,
                  const FunctionParams& params) -> Result<SummaryResult> {
    STATDB_ASSIGN_OR_RETURN(double v, fn(data, params));
    return SummaryResult::Scalar(v);
  };
  return d;
}

}  // namespace

FunctionRegistry FunctionRegistry::WithBuiltins() {
  FunctionRegistry reg;
  auto add = [&reg](FunctionDescriptor d) { (void)reg.Register(std::move(d)); };

  add(ScalarFn("count", false,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return Result<double>(double(d.size()));
               }));
  add(ScalarFn("sum", false,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return Result<double>(Sum(d));
               }));
  add(ScalarFn("mean", false,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return Mean(d);
               }));
  add(ScalarFn("variance", false,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return Variance(d);
               }));
  add(ScalarFn("stddev", false,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return StdDev(d);
               }));
  add(ScalarFn("min", true,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return Min(d);
               }));
  add(ScalarFn("max", true,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return Max(d);
               }));
  add(ScalarFn("median", true,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return Median(d);
               }));
  add(ScalarFn("quantile", true,
               [](const std::vector<double>& d, const FunctionParams& p) {
                 return Quantile(d, p.GetOr("p", 0.5));
               }));
  add(ScalarFn("trimmed_mean", true,
               [](const std::vector<double>& d, const FunctionParams& p) {
                 return TrimmedMean(d, p.GetOr("lo", 0.05),
                                    p.GetOr("hi", 0.95));
               }));
  add(ScalarFn("range", true,
               [](const std::vector<double>& d, const FunctionParams&)
                   -> Result<double> {
                 STATDB_ASSIGN_OR_RETURN(double lo, Min(d));
                 STATDB_ASSIGN_OR_RETURN(double hi, Max(d));
                 return hi - lo;
               }));
  add(ScalarFn("mode", false,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return Mode(d);
               }));
  add(ScalarFn("distinct", false,
               [](const std::vector<double>& d, const FunctionParams&) {
                 return Result<double>(double(CountDistinct(d)));
               }));
  add(ScalarFn("outside_k_sigma", false,
               [](const std::vector<double>& d, const FunctionParams& p)
                   -> Result<double> {
                 STATDB_ASSIGN_OR_RETURN(
                     uint64_t n, CountOutsideKSigma(d, p.GetOr("k", 3.0)));
                 return double(n);
               }));

  FunctionDescriptor quartiles;
  quartiles.name = "quartiles";
  quartiles.order_dependent = true;
  quartiles.compute = [](const std::vector<double>& d,
                         const FunctionParams&) -> Result<SummaryResult> {
    STATDB_ASSIGN_OR_RETURN(std::vector<double> qs,
                            Quantiles(d, {0.25, 0.5, 0.75}));
    return SummaryResult::Vector(std::move(qs));
  };
  add(std::move(quartiles));

  FunctionDescriptor histogram;
  histogram.name = "histogram";
  histogram.order_dependent = false;
  histogram.compute = [](const std::vector<double>& d,
                         const FunctionParams& p) -> Result<SummaryResult> {
    size_t buckets = static_cast<size_t>(p.GetOr("buckets", 20));
    STATDB_ASSIGN_OR_RETURN(Histogram h, BuildHistogramAuto(d, buckets));
    return SummaryResult::Histo(std::move(h));
  };
  add(std::move(histogram));

  return reg;
}

}  // namespace statdb

#include "rules/management_db.h"

#include <algorithm>

namespace statdb {

std::string_view MaintenancePolicyName(MaintenancePolicy p) {
  switch (p) {
    case MaintenancePolicy::kIncremental: return "incremental";
    case MaintenancePolicy::kInvalidate: return "invalidate";
    case MaintenancePolicy::kEager: return "eager";
  }
  return "?";
}

Status ManagementDatabase::RegisterView(
    const std::string& name, const std::string& canonical_definition,
    MaintenancePolicy policy) {
  if (views_.contains(name)) {
    return AlreadyExistsError("view already registered: " + name);
  }
  ViewRecord rec;
  rec.name = name;
  rec.canonical_definition = canonical_definition;
  rec.policy = policy;
  views_.emplace(name, std::move(rec));
  return Status::OK();
}

Result<ViewRecord*> ManagementDatabase::GetView(const std::string& name) {
  auto it = views_.find(name);
  if (it == views_.end()) return NotFoundError("no view named " + name);
  return &it->second;
}

Result<const ViewRecord*> ManagementDatabase::GetView(
    const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) return NotFoundError("no view named " + name);
  return &it->second;
}

std::vector<std::string> ManagementDatabase::ViewNames() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [name, rec] : views_) out.push_back(name);
  return out;
}

Status ManagementDatabase::DropView(const std::string& name) {
  if (views_.erase(name) == 0) {
    return NotFoundError("no view named " + name);
  }
  return Status::OK();
}

Result<std::string> ManagementDatabase::FindViewByDefinition(
    const std::string& canonical_definition) const {
  for (const auto& [name, rec] : views_) {
    if (rec.canonical_definition == canonical_definition) return name;
  }
  return NotFoundError("no view with this definition");
}

Result<std::unique_ptr<IncrementalMaintainer>>
ManagementDatabase::MakeMaintainer(const std::string& function,
                                   const FunctionParams& params) const {
  if (function == "count") return MakeCountMaintainer();
  if (function == "sum") return MakeSumMaintainer();
  if (function == "mean") return MakeMeanMaintainer();
  if (function == "variance") return MakeVarianceMaintainer();
  if (function == "min") return MakeMinMaintainer();
  if (function == "max") return MakeMaxMaintainer();
  if (function == "median") {
    return MakeOrderStatWindowMaintainer(
        0.5, static_cast<size_t>(params.GetOr("window", 100)));
  }
  if (function == "quantile") {
    return MakeOrderStatWindowMaintainer(
        params.GetOr("p", 0.5),
        static_cast<size_t>(params.GetOr("window", 100)));
  }
  if (function == "mode") return MakeModeMaintainer();
  if (function == "distinct") return MakeDistinctMaintainer();
  if (function == "histogram") {
    return MakeHistogramMaintainer(
        static_cast<size_t>(params.GetOr("buckets", 20)),
        params.GetOr("spill", 0.1));
  }
  return NotFoundError("no incremental rule for function " + function);
}

bool ManagementDatabase::HasMaintainer(const std::string& function) const {
  return MakeMaintainer(function, FunctionParams()).ok();
}

Status ManagementDatabase::AddDerivedColumn(const std::string& view,
                                            DerivedColumnDef def) {
  STATDB_ASSIGN_OR_RETURN(ViewRecord * rec, GetView(view));
  for (const DerivedColumnDef& existing : rec->derived_columns) {
    if (existing.name == def.name) {
      return AlreadyExistsError("derived column already defined: " +
                                def.name);
    }
  }
  rec->derived_columns.push_back(std::move(def));
  return Status::OK();
}

Result<std::vector<DerivedColumnDef*>> ManagementDatabase::DerivedColumnsOn(
    const std::string& view, const std::string& attribute) {
  STATDB_ASSIGN_OR_RETURN(ViewRecord * rec, GetView(view));
  std::vector<DerivedColumnDef*> out;
  for (DerivedColumnDef& def : rec->derived_columns) {
    std::vector<std::string> inputs = def.Inputs();
    if (std::find(inputs.begin(), inputs.end(), attribute) != inputs.end()) {
      out.push_back(&def);
    }
  }
  return out;
}

}  // namespace statdb

#ifndef STATDB_RULES_DERIVED_H_
#define STATDB_RULES_DERIVED_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/expr.h"

namespace statdb {

/// How a derived column reacts when one of its inputs changes (§3.2's
/// Management Database rules):
///  - kLocal: "the effect of the update to the input attribute is
///    'local', i.e., it will require the computation of only one value"
///    (sum of three attributes, logarithm of an attribute);
///  - kRegenerate: "updating even a single value in the attribute upon
///    which the residuals depend requires regeneration of the entire
///    vector (since the model may change)" — mark out of date, rebuild
///    the whole column.
enum class DerivedRuleKind : uint8_t {
  kLocal = 0,
  kRegenerate = 1,
};

/// Built-in whole-column generators for kRegenerate rules.
enum class ColumnGenerator : uint8_t {
  kNone = 0,
  /// residuals of y ~ x: inputs = {x, y}.
  kRegressionResiduals = 1,
  /// z-scores of the input: inputs = {x}.
  kZScores = 2,
};

/// Declaration of one derived column of a view.
struct DerivedColumnDef {
  std::string name;
  DerivedRuleKind kind = DerivedRuleKind::kLocal;

  /// kLocal: per-row expression (inputs inferred from the expression).
  ExprPtr row_expr;

  /// kRegenerate: which generator rebuilds the column, and its inputs.
  ColumnGenerator generator = ColumnGenerator::kNone;
  std::vector<std::string> generator_inputs;

  /// Set when an input changed and the column has not been regenerated
  /// yet ("or simply marking it as out of date", §3.2).
  bool out_of_date = false;

  /// Attributes whose updates affect this column.
  std::vector<std::string> Inputs() const {
    if (kind == DerivedRuleKind::kLocal && row_expr != nullptr) {
      return row_expr->ReferencedColumns();
    }
    return generator_inputs;
  }

  static DerivedColumnDef Local(std::string name, ExprPtr expr) {
    DerivedColumnDef d;
    d.name = std::move(name);
    d.kind = DerivedRuleKind::kLocal;
    d.row_expr = std::move(expr);
    return d;
  }

  static DerivedColumnDef Residuals(std::string name, std::string x,
                                    std::string y) {
    DerivedColumnDef d;
    d.name = std::move(name);
    d.kind = DerivedRuleKind::kRegenerate;
    d.generator = ColumnGenerator::kRegressionResiduals;
    d.generator_inputs = {std::move(x), std::move(y)};
    return d;
  }

  static DerivedColumnDef ZScores(std::string name, std::string x) {
    DerivedColumnDef d;
    d.name = std::move(name);
    d.kind = DerivedRuleKind::kRegenerate;
    d.generator = ColumnGenerator::kZScores;
    d.generator_inputs = {std::move(x)};
    return d;
  }
};

}  // namespace statdb

#endif  // STATDB_RULES_DERIVED_H_

#ifndef STATDB_RULES_MANAGEMENT_DB_H_
#define STATDB_RULES_MANAGEMENT_DB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rules/derived.h"
#include "rules/function_registry.h"
#include "rules/incremental.h"
#include "rules/update_history.h"

namespace statdb {

/// How the DBMS keeps a view's Summary Database consistent under updates.
enum class MaintenancePolicy : uint8_t {
  /// Apply the Management Database's incremental rules per update; fall
  /// back to recomputation only when a rule's auxiliary state runs out
  /// (§4.2).
  kIncremental = 0,
  /// §4.3's fallback: mark every cached value on the updated attribute
  /// invalid; recompute lazily on next query.
  kInvalidate = 1,
  /// Recompute every affected cached value immediately after the update.
  kEager = 2,
};

std::string_view MaintenancePolicyName(MaintenancePolicy p);

/// Control record for one registered concrete view.
struct ViewRecord {
  std::string name;
  /// Canonical text of the view definition — used to detect that "a view
  /// ... identical to one that has already been created by another
  /// analyst" is being re-requested (§2.3).
  std::string canonical_definition;
  uint64_t version = 0;
  MaintenancePolicy policy = MaintenancePolicy::kIncremental;
  UpdateHistory history;
  std::vector<DerivedColumnDef> derived_columns;
};

/// The Management Database (§3.2): "a repository for information that
/// describes the organization of the data, the functions that are
/// applied to it, rules for manipulating information in the Summary
/// Databases, view definitions, update histories of the views, and other
/// control information." One per DBMS.
class ManagementDatabase {
 public:
  ManagementDatabase() : functions_(FunctionRegistry::WithBuiltins()) {}

  // --- view definitions --------------------------------------------------

  Status RegisterView(const std::string& name,
                      const std::string& canonical_definition,
                      MaintenancePolicy policy);
  Result<ViewRecord*> GetView(const std::string& name);
  Result<const ViewRecord*> GetView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;
  Status DropView(const std::string& name);

  /// Name of an existing view with the same canonical definition, if any
  /// — the duplicate-materialization guard of §2.3.
  Result<std::string> FindViewByDefinition(
      const std::string& canonical_definition) const;

  // --- function dictionary & incremental rules ---------------------------

  const FunctionRegistry& functions() const { return functions_; }
  FunctionRegistry& functions() { return functions_; }

  /// The incremental-recomputation rule for `function`, or NOT_FOUND when
  /// only full recomputation applies (order-dependent functions other
  /// than the windowed order statistics, cross-column results, ...).
  /// `params` selects e.g. the quantile's p. Callers own the maintainer.
  Result<std::unique_ptr<IncrementalMaintainer>> MakeMaintainer(
      const std::string& function, const FunctionParams& params) const;

  /// Whether an incremental rule exists for `function`.
  bool HasMaintainer(const std::string& function) const;

  // --- derived-column rules ----------------------------------------------

  Status AddDerivedColumn(const std::string& view, DerivedColumnDef def);
  /// Derived columns of `view` affected by an update to `attribute`.
  Result<std::vector<DerivedColumnDef*>> DerivedColumnsOn(
      const std::string& view, const std::string& attribute);

 private:
  FunctionRegistry functions_;
  std::map<std::string, ViewRecord> views_;
};

}  // namespace statdb

#endif  // STATDB_RULES_MANAGEMENT_DB_H_

#ifndef STATDB_RULES_INCREMENTAL_H_
#define STATDB_RULES_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "summary/summary_result.h"

namespace statdb {

/// One cell change on the maintained attribute. Covers the three cases an
/// analyst's predicate update produces: value change (old and new), value
/// invalidated to missing (old only), and missing filled in (new only).
struct CellDelta {
  std::optional<double> old_value;
  std::optional<double> new_value;

  static CellDelta Change(double from, double to) { return {from, to}; }
  static CellDelta Invalidate(double old) { return {old, std::nullopt}; }
  static CellDelta Fill(double v) { return {std::nullopt, v}; }
};

/// Per-maintainer effort counters: how often the cheap path sufficed vs.
/// how often a full pass over the column was needed.
struct MaintainerStats {
  uint64_t applies = 0;    // deltas absorbed incrementally
  uint64_t rebuilds = 0;   // full-data reinitializations
  /// Rebuilds answered by the paper's single-pass bucket scheme (the old
  /// window range still bracketed the new target) vs. a full sort.
  uint64_t single_pass_rebuilds = 0;
  uint64_t window_slides = 0;  // order-stat window pointer movements
};

/// Incrementally recomputable function state — the executable form of the
/// Management Database's update rules (§3.2/§4.2): "a more attractive
/// alternative is to incrementally recompute the result using the old
/// function value, changes made to the data, and perhaps some auxiliary
/// information, without having to access all of the data."
///
/// Protocol: Initialize() once from the full column; Apply() per cell
/// delta. Apply returns FAILED_PRECONDITION when the auxiliary state can
/// no longer answer (e.g. the unique minimum was deleted, or the median
/// pointer ran off the cached window); the caller must then re-Initialize
/// from the full column (charging the one full pass the paper predicts).
class IncrementalMaintainer {
 public:
  virtual ~IncrementalMaintainer() = default;

  virtual std::string name() const = 0;

  /// (Re)builds auxiliary state with one pass over the full column.
  virtual Result<SummaryResult> Initialize(
      const std::vector<double>& data) = 0;

  /// Folds one delta into the state and returns the new result.
  virtual Result<SummaryResult> Apply(const CellDelta& delta) = 0;

  /// Folds a whole delta batch and returns the result once — the
  /// amortized arm the delta-batched maintenance engine drives
  /// (DESIGN.md §16). The default loops Apply, discarding intermediate
  /// results; maintainers whose Apply pays a per-call materialization
  /// cost (histogram) override it. Like Apply, FAILED_PRECONDITION
  /// means the auxiliary state gave up mid-batch and the caller must
  /// re-Initialize from the full column.
  virtual Result<SummaryResult> ApplyBatch(
      const std::vector<CellDelta>& batch) {
    if (batch.empty()) return Current();
    Result<SummaryResult> r = Current();
    for (const CellDelta& d : batch) {
      r = Apply(d);
      if (!r.ok()) return r;
    }
    return r;
  }

  /// Current result without applying anything.
  virtual Result<SummaryResult> Current() const = 0;

  const MaintainerStats& stats() const { return stats_; }

 protected:
  MaintainerStats stats_;
};

/// count(non-missing) — trivially differencable.
std::unique_ptr<IncrementalMaintainer> MakeCountMaintainer();

/// sum — the Koenig–Paige "totals" example.
std::unique_ptr<IncrementalMaintainer> MakeSumMaintainer();

/// mean — maintained via (n, sum).
std::unique_ptr<IncrementalMaintainer> MakeMeanMaintainer();

/// Sample variance — maintained via (n, mean, m2) with exact insert,
/// remove and replace updates.
std::unique_ptr<IncrementalMaintainer> MakeVarianceMaintainer();

/// min/max — auxiliary state is the extremum and its multiplicity;
/// deleting the last copy of the extremum forces a rebuild ("most updates
/// to the data set will not affect the min or max values", §4.2).
std::unique_ptr<IncrementalMaintainer> MakeMinMaintainer();
std::unique_ptr<IncrementalMaintainer> MakeMaxMaintainer();

/// mode / distinct-count — auxiliary state is the full value-frequency
/// table, so both are exact under any update stream at O(log distinct)
/// per delta (the "record the results ... in a database" alternative the
/// paper weighs in §3.1, automated).
std::unique_ptr<IncrementalMaintainer> MakeModeMaintainer();
std::unique_ptr<IncrementalMaintainer> MakeDistinctMaintainer();

/// Histogram with edges frozen at initialization: deltas move bucket
/// counts in O(1); values escaping the frozen range accumulate in the
/// overflow counters, and once they exceed `spill_tolerance` of the data
/// the maintainer refuses and a rebuild re-derives fresh edges. This is
/// the Summary Database's histogram row kept continuously usable.
std::unique_ptr<IncrementalMaintainer> MakeHistogramMaintainer(
    size_t buckets, double spill_tolerance = 0.1);

/// The paper's §4.2 order-statistic technique, generalized from the
/// median to any quantile p: cache a window of `window_size` values
/// around the target order statistic plus counts of values below/above
/// the window. Updates slide the implicit pointer; when the target rank
/// leaves the window ("the pointer runs off the list") Apply refuses and
/// the rebuild regenerates the window — in a single pass when the old
/// window's value range still brackets the new target (the 101-bucket
/// hash argument), falling back to a sort otherwise.
std::unique_ptr<IncrementalMaintainer> MakeOrderStatWindowMaintainer(
    double p, size_t window_size);

inline std::unique_ptr<IncrementalMaintainer> MakeMedianWindowMaintainer(
    size_t window_size = 100) {
  return MakeOrderStatWindowMaintainer(0.5, window_size);
}

}  // namespace statdb

#endif  // STATDB_RULES_INCREMENTAL_H_

#include "rules/incremental.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/histogram.h"

namespace statdb {

namespace {

Status WindowExhausted(const std::string& who) {
  return FailedPreconditionError(who +
                                 ": auxiliary state exhausted, rebuild "
                                 "from the full column required");
}

/// count / sum / mean / variance share one sufficient-statistics engine:
/// (n, sum, mean, m2) with exact insert and remove updates — the
/// finite-differencing rules of Koenig & Paige for totals and averages,
/// extended to second moments.
class MomentMaintainer : public IncrementalMaintainer {
 public:
  enum class Output { kCount, kSum, kMean, kVariance };

  explicit MomentMaintainer(Output output) : output_(output) {}

  std::string name() const override {
    switch (output_) {
      case Output::kCount: return "count";
      case Output::kSum: return "sum";
      case Output::kMean: return "mean";
      case Output::kVariance: return "variance";
    }
    return "?";
  }

  Result<SummaryResult> Initialize(const std::vector<double>& data) override {
    ++stats_.rebuilds;
    n_ = 0;
    sum_ = mean_ = m2_ = 0;
    for (double x : data) Insert(x);
    initialized_ = true;
    return Current();
  }

  Result<SummaryResult> Apply(const CellDelta& delta) override {
    if (!initialized_) return WindowExhausted(name());
    if (delta.old_value.has_value()) {
      if (n_ == 0) return WindowExhausted(name());
      Remove(*delta.old_value);
    }
    if (delta.new_value.has_value()) {
      Insert(*delta.new_value);
    }
    ++stats_.applies;
    return Current();
  }

  Result<SummaryResult> Current() const override {
    switch (output_) {
      case Output::kCount:
        return SummaryResult::Scalar(double(n_));
      case Output::kSum:
        return SummaryResult::Scalar(sum_);
      case Output::kMean:
        if (n_ == 0) {
          return FailedPreconditionError("mean of an empty column");
        }
        return SummaryResult::Scalar(mean_);
      case Output::kVariance:
        if (n_ == 0) {
          return FailedPreconditionError("variance of an empty column");
        }
        return SummaryResult::Scalar(n_ < 2 ? 0.0
                                            : m2_ / double(n_ - 1));
    }
    return InternalError("bad output kind");
  }

 private:
  void Insert(double x) {
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
  }

  void Remove(double x) {
    if (n_ == 1) {
      n_ = 0;
      sum_ = mean_ = m2_ = 0;
      return;
    }
    double old_mean = mean_;
    mean_ = (double(n_) * mean_ - x) / double(n_ - 1);
    m2_ -= (x - old_mean) * (x - mean_);
    if (m2_ < 0) m2_ = 0;  // clamp FP drift
    sum_ -= x;
    --n_;
  }

  Output output_;
  bool initialized_ = false;
  uint64_t n_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// min/max: auxiliary information is the extremum and how many copies of
/// it exist. Insertions and non-extremal deletions are O(1); deleting the
/// last copy of the extremum cannot be answered without a rescan.
class ExtremumMaintainer : public IncrementalMaintainer {
 public:
  explicit ExtremumMaintainer(bool is_min) : is_min_(is_min) {}

  std::string name() const override { return is_min_ ? "min" : "max"; }

  Result<SummaryResult> Initialize(const std::vector<double>& data) override {
    ++stats_.rebuilds;
    initialized_ = false;
    if (data.empty()) {
      n_ = 0;
      return FailedPreconditionError("extremum of an empty column");
    }
    extremum_ = data[0];
    multiplicity_ = 0;
    n_ = data.size();
    for (double x : data) {
      if (Better(x, extremum_)) {
        extremum_ = x;
        multiplicity_ = 1;
      } else if (x == extremum_) {
        ++multiplicity_;
      }
    }
    initialized_ = true;
    return Current();
  }

  Result<SummaryResult> Apply(const CellDelta& delta) override {
    if (!initialized_) return WindowExhausted(name());
    if (delta.old_value.has_value()) {
      double old = *delta.old_value;
      if (Better(old, extremum_)) {
        // The column held a value better than our extremum: state is
        // inconsistent; force a rebuild.
        initialized_ = false;
        return WindowExhausted(name());
      }
      if (old == extremum_) {
        if (multiplicity_ == 1 &&
            !(delta.new_value.has_value() &&
              (Better(*delta.new_value, extremum_) ||
               *delta.new_value == extremum_))) {
          // Last copy of the extremum removed and not replaced by an
          // equal-or-better value: only a rescan can find the new one.
          initialized_ = false;
          return WindowExhausted(name());
        }
        --multiplicity_;
      }
      --n_;
    }
    if (delta.new_value.has_value()) {
      double x = *delta.new_value;
      if (n_ == 0 || Better(x, extremum_)) {
        extremum_ = x;
        multiplicity_ = 1;
      } else if (x == extremum_) {
        ++multiplicity_;
      }
      ++n_;
    }
    if (n_ == 0) {
      initialized_ = false;
      return WindowExhausted(name());
    }
    ++stats_.applies;
    return Current();
  }

  Result<SummaryResult> Current() const override {
    if (!initialized_ || n_ == 0) {
      return FailedPreconditionError("extremum not available");
    }
    return SummaryResult::Scalar(extremum_);
  }

 private:
  bool Better(double a, double b) const { return is_min_ ? a < b : a > b; }

  bool is_min_;
  bool initialized_ = false;
  double extremum_ = 0;
  uint64_t multiplicity_ = 0;
  uint64_t n_ = 0;
};

/// §4.2's technique for the median and other order statistics: keep a
/// sorted window of values bracketing the target rank plus exact counts
/// of values strictly outside it. Deltas slide the implicit pointer;
/// rank excursions beyond the window force a regeneration, which is a
/// single pass when the old window's value range still brackets the new
/// target (the paper's 101-bucket argument — "we will know what the
/// approximate range of values for the new histogram will be").
class OrderStatWindowMaintainer : public IncrementalMaintainer {
 public:
  OrderStatWindowMaintainer(double p, size_t window_size)
      : p_(p), window_cap_(std::max<size_t>(window_size, 4)) {}

  std::string name() const override { return "order-stat-window"; }

  Result<SummaryResult> Initialize(const std::vector<double>& data) override {
    ++stats_.rebuilds;
    initialized_ = false;
    if (data.empty()) {
      return FailedPreconditionError("order statistic of an empty column");
    }
    // Single-pass path: "we will know what the approximate range of
    // values for the new histogram will be since updates ... cause the
    // value of the median to change only slightly" (§4.2). The previous
    // window's range, inflated by its own span on both sides, brackets
    // the new target unless the data shifted wholesale.
    if (!window_.empty()) {
      double span = window_.back() - window_.front();
      if (span <= 0) {
        span = std::max(1.0, std::abs(window_.front()) * 0.01);
      }
      double lo = window_.front() - span;
      double hi = window_.back() + span;
      uint64_t below = 0, above = 0;
      std::vector<double> in_range;
      for (double x : data) {
        if (x < lo) {
          ++below;
        } else if (x > hi) {
          ++above;
        } else {
          in_range.push_back(x);
        }
      }
      uint64_t n = data.size();
      auto [lo_rank, hi_rank] = TargetRanks(n);
      if (!in_range.empty() && in_range.size() <= 8 * window_cap_ &&
          lo_rank >= below && hi_rank < below + in_range.size()) {
        std::sort(in_range.begin(), in_range.end());
        window_ = std::move(in_range);
        below_ = below;
        above_ = above;
        ++stats_.single_pass_rebuilds;
        initialized_ = true;
        TrimWindow();
        return Current();
      }
    }
    // Full path: sort and carve a centered window.
    std::vector<double> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    uint64_t n = sorted.size();
    auto [lo_rank, hi_rank] = TargetRanks(n);
    uint64_t half = window_cap_ / 2;
    uint64_t start = lo_rank > half ? lo_rank - half : 0;
    uint64_t end = std::min<uint64_t>(n, hi_rank + half + 1);
    window_.assign(sorted.begin() + start, sorted.begin() + end);
    below_ = start;
    above_ = n - end;
    initialized_ = true;
    return Current();
  }

  Result<SummaryResult> Apply(const CellDelta& delta) override {
    if (!initialized_) return WindowExhausted(name());
    if (delta.old_value.has_value()) {
      double old = *delta.old_value;
      if (window_.empty()) {
        initialized_ = false;
        return WindowExhausted(name());
      }
      if (old < window_.front()) {
        if (below_ == 0) {
          initialized_ = false;
          return WindowExhausted(name());
        }
        --below_;
      } else if (old > window_.back()) {
        if (above_ == 0) {
          initialized_ = false;
          return WindowExhausted(name());
        }
        --above_;
      } else {
        auto it = std::lower_bound(window_.begin(), window_.end(), old);
        if (it == window_.end() || *it != old) {
          initialized_ = false;
          return WindowExhausted(name());
        }
        window_.erase(it);
      }
    }
    if (delta.new_value.has_value()) {
      double x = *delta.new_value;
      if (window_.empty()) {
        window_.push_back(x);
      } else if (x < window_.front()) {
        ++below_;
      } else if (x > window_.back()) {
        ++above_;
      } else {
        window_.insert(std::lower_bound(window_.begin(), window_.end(), x),
                       x);
      }
    }
    uint64_t n = Count();
    if (n == 0) {
      initialized_ = false;
      return WindowExhausted(name());
    }
    auto [lo_rank, hi_rank] = TargetRanks(n);
    if (lo_rank < below_ || hi_rank >= below_ + window_.size()) {
      // "When the pointer runs off the list a new histogram will have to
      // be generated."
      initialized_ = false;
      return WindowExhausted(name());
    }
    ++stats_.applies;
    ++stats_.window_slides;
    TrimWindow();
    return Current();
  }

  Result<SummaryResult> Current() const override {
    if (!initialized_) {
      return FailedPreconditionError("order statistic not available");
    }
    uint64_t n = Count();
    if (n == 0) {
      return FailedPreconditionError("order statistic of an empty column");
    }
    auto [lo_rank, hi_rank] = TargetRanks(n);
    if (lo_rank < below_ || hi_rank >= below_ + window_.size()) {
      return FailedPreconditionError("target rank outside cached window");
    }
    double h = p_ * double(n - 1);
    double frac = h - std::floor(h);
    double lo = window_[lo_rank - below_];
    double hi = window_[hi_rank - below_];
    return SummaryResult::Scalar(lo + frac * (hi - lo));
  }

 private:
  uint64_t Count() const { return below_ + window_.size() + above_; }

  /// Ranks of the two order statistics the interpolated quantile needs.
  std::pair<uint64_t, uint64_t> TargetRanks(uint64_t n) const {
    double h = p_ * double(n - 1);
    uint64_t lo = static_cast<uint64_t>(std::floor(h));
    uint64_t hi = std::min<uint64_t>(lo + 1, n - 1);
    if (h == std::floor(h)) hi = lo;
    return {lo, hi};
  }

  /// Inserts never evict, so the window can grow; shed the far ends once
  /// it doubles past its budget (keeping the target comfortably inside).
  void TrimWindow() {
    if (window_.size() <= 2 * window_cap_) return;
    uint64_t n = Count();
    auto [lo_rank, hi_rank] = TargetRanks(n);
    uint64_t half = window_cap_ / 2;
    uint64_t keep_start_rank = lo_rank > half ? lo_rank - half : 0;
    uint64_t keep_end_rank = hi_rank + half + 1;
    uint64_t wstart = std::max<uint64_t>(keep_start_rank, below_) - below_;
    uint64_t wend =
        std::min<uint64_t>(keep_end_rank - below_, window_.size());
    if (wstart == 0 && wend == window_.size()) return;
    above_ += window_.size() - wend;
    below_ += wstart;
    window_ = std::vector<double>(window_.begin() + wstart,
                                  window_.begin() + wend);
  }

  double p_;
  size_t window_cap_;
  bool initialized_ = false;
  std::vector<double> window_;  // sorted
  uint64_t below_ = 0;
  uint64_t above_ = 0;
};

/// mode / distinct via a value-frequency table.
class FrequencyMaintainer : public IncrementalMaintainer {
 public:
  enum class Output { kMode, kDistinct };

  explicit FrequencyMaintainer(Output output) : output_(output) {}

  std::string name() const override {
    return output_ == Output::kMode ? "mode" : "distinct";
  }

  Result<SummaryResult> Initialize(const std::vector<double>& data) override {
    ++stats_.rebuilds;
    freq_.clear();
    for (double x : data) ++freq_[x];
    initialized_ = true;
    return Current();
  }

  Result<SummaryResult> Apply(const CellDelta& delta) override {
    if (!initialized_) return WindowExhausted(name());
    if (delta.old_value.has_value()) {
      auto it = freq_.find(*delta.old_value);
      if (it == freq_.end()) {
        initialized_ = false;
        return WindowExhausted(name());
      }
      if (--it->second == 0) freq_.erase(it);
    }
    if (delta.new_value.has_value()) {
      ++freq_[*delta.new_value];
    }
    ++stats_.applies;
    return Current();
  }

  Result<SummaryResult> Current() const override {
    if (!initialized_) {
      return FailedPreconditionError("frequency table not available");
    }
    if (output_ == Output::kDistinct) {
      return SummaryResult::Scalar(double(freq_.size()));
    }
    if (freq_.empty()) {
      return FailedPreconditionError("mode of an empty column");
    }
    // Most frequent; ties break toward the smaller value (std::map is
    // ordered), matching stats::Mode.
    double best = freq_.begin()->first;
    uint64_t best_count = 0;
    for (const auto& [value, count] : freq_) {
      if (count > best_count) {
        best = value;
        best_count = count;
      }
    }
    return SummaryResult::Scalar(best);
  }

 private:
  Output output_;
  bool initialized_ = false;
  // statdb-lint: allow(double-keyed-map) — exact-value frequency table
  // mirroring Mode()'s semantics; keys are the column's own doubles.
  std::map<double, uint64_t> freq_;
};

/// Histogram with frozen edges and O(1) bucket-count deltas.
class HistogramMaintainer : public IncrementalMaintainer {
 public:
  HistogramMaintainer(size_t buckets, double spill_tolerance)
      : buckets_(std::max<size_t>(buckets, 1)),
        spill_tolerance_(spill_tolerance) {}

  std::string name() const override { return "histogram"; }

  Result<SummaryResult> Initialize(const std::vector<double>& data) override {
    ++stats_.rebuilds;
    initialized_ = false;
    STATDB_ASSIGN_OR_RETURN(hist_, BuildHistogramAuto(data, buckets_));
    initialized_ = true;
    return Current();
  }

  Result<SummaryResult> Apply(const CellDelta& delta) override {
    if (!initialized_) return WindowExhausted(name());
    if (delta.old_value.has_value()) {
      STATDB_RETURN_IF_ERROR(Adjust(*delta.old_value, -1));
    }
    if (delta.new_value.has_value()) {
      STATDB_RETURN_IF_ERROR(Adjust(*delta.new_value, +1));
    }
    // Too much mass outside the frozen range: fresh edges needed.
    uint64_t total = hist_.TotalCount();
    if (total > 0 &&
        double(hist_.below + hist_.above) >
            spill_tolerance_ * double(total)) {
      initialized_ = false;
      return WindowExhausted(name());
    }
    ++stats_.applies;
    return Current();
  }

  /// The batched arm skips Apply's per-delta result materialization (a
  /// full Histogram copy each call): adjust every bucket first, check
  /// spill once, render once. Bucket arithmetic is integer-exact, so
  /// the final counts are bit-identical to the Apply loop's.
  Result<SummaryResult> ApplyBatch(
      const std::vector<CellDelta>& batch) override {
    if (!initialized_) return WindowExhausted(name());
    for (const CellDelta& delta : batch) {
      if (delta.old_value.has_value()) {
        STATDB_RETURN_IF_ERROR(Adjust(*delta.old_value, -1));
      }
      if (delta.new_value.has_value()) {
        STATDB_RETURN_IF_ERROR(Adjust(*delta.new_value, +1));
      }
      ++stats_.applies;
    }
    uint64_t total = hist_.TotalCount();
    if (total > 0 &&
        double(hist_.below + hist_.above) >
            spill_tolerance_ * double(total)) {
      initialized_ = false;
      return WindowExhausted(name());
    }
    return Current();
  }

  Result<SummaryResult> Current() const override {
    if (!initialized_) {
      return FailedPreconditionError("histogram not available");
    }
    return SummaryResult::Histo(hist_);
  }

 private:
  Status Adjust(double x, int direction) {
    auto bump = [this, direction](uint64_t& slot) -> Status {
      if (direction < 0) {
        if (slot == 0) {
          initialized_ = false;
          return WindowExhausted(name());
        }
        --slot;
      } else {
        ++slot;
      }
      return Status::OK();
    };
    int b = hist_.BucketOf(x);
    if (b >= 0) return bump(hist_.counts[size_t(b)]);
    if (x < hist_.edges.front()) return bump(hist_.below);
    return bump(hist_.above);
  }

  size_t buckets_;
  double spill_tolerance_;
  bool initialized_ = false;
  Histogram hist_;
};

}  // namespace

std::unique_ptr<IncrementalMaintainer> MakeModeMaintainer() {
  return std::make_unique<FrequencyMaintainer>(
      FrequencyMaintainer::Output::kMode);
}
std::unique_ptr<IncrementalMaintainer> MakeDistinctMaintainer() {
  return std::make_unique<FrequencyMaintainer>(
      FrequencyMaintainer::Output::kDistinct);
}
std::unique_ptr<IncrementalMaintainer> MakeHistogramMaintainer(
    size_t buckets, double spill_tolerance) {
  return std::make_unique<HistogramMaintainer>(buckets, spill_tolerance);
}

std::unique_ptr<IncrementalMaintainer> MakeCountMaintainer() {
  return std::make_unique<MomentMaintainer>(MomentMaintainer::Output::kCount);
}
std::unique_ptr<IncrementalMaintainer> MakeSumMaintainer() {
  return std::make_unique<MomentMaintainer>(MomentMaintainer::Output::kSum);
}
std::unique_ptr<IncrementalMaintainer> MakeMeanMaintainer() {
  return std::make_unique<MomentMaintainer>(MomentMaintainer::Output::kMean);
}
std::unique_ptr<IncrementalMaintainer> MakeVarianceMaintainer() {
  return std::make_unique<MomentMaintainer>(
      MomentMaintainer::Output::kVariance);
}
std::unique_ptr<IncrementalMaintainer> MakeMinMaintainer() {
  return std::make_unique<ExtremumMaintainer>(/*is_min=*/true);
}
std::unique_ptr<IncrementalMaintainer> MakeMaxMaintainer() {
  return std::make_unique<ExtremumMaintainer>(/*is_min=*/false);
}
std::unique_ptr<IncrementalMaintainer> MakeOrderStatWindowMaintainer(
    double p, size_t window_size) {
  return std::make_unique<OrderStatWindowMaintainer>(p, window_size);
}

}  // namespace statdb

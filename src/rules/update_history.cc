#include "rules/update_history.h"

namespace statdb {

Status UpdateHistory::Append(UpdateLogEntry entry) {
  if (entry.version <= latest_version()) {
    return InvalidArgumentError("update log versions must increase");
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

std::vector<const UpdateLogEntry*> UpdateHistory::EntriesSince(
    uint64_t since) const {
  std::vector<const UpdateLogEntry*> out;
  for (const UpdateLogEntry& e : entries_) {
    if (e.version > since) out.push_back(&e);
  }
  return out;
}

Status UpdateHistory::Rollback(
    uint64_t target_version,
    const std::function<Status(const CellChange&)>& undo_cell) {
  // Undo newest-first; within an entry, cells are undone in reverse so
  // chained updates of the same cell unwind correctly.
  size_t keep = entries_.size();
  for (size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].version <= target_version) break;
    const UpdateLogEntry& entry = entries_[i];
    for (size_t c = entry.changes.size(); c-- > 0;) {
      CellChange undo = entry.changes[c];
      STATDB_RETURN_IF_ERROR(undo_cell(undo));
    }
    keep = i;
  }
  entries_.resize(keep);
  return Status::OK();
}

uint64_t UpdateHistory::TotalCellChanges() const {
  uint64_t total = 0;
  for (const UpdateLogEntry& e : entries_) total += e.changes.size();
  return total;
}

}  // namespace statdb

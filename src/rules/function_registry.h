#ifndef STATDB_RULES_FUNCTION_REGISTRY_H_
#define STATDB_RULES_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "summary/summary_result.h"

namespace statdb {

/// Canonical numeric parameters of a statistical function ("p=0.05").
/// Encoded sorted-by-name so equal parameter sets encode identically and
/// cache keys are canonical.
class FunctionParams {
 public:
  FunctionParams() = default;

  FunctionParams& Set(const std::string& name, double value) {
    params_[name] = value;
    return *this;
  }

  Result<double> Get(const std::string& name) const;
  double GetOr(const std::string& name, double fallback) const;
  bool empty() const { return params_.empty(); }

  std::string Encode() const;
  static Result<FunctionParams> Decode(const std::string& encoded);

 private:
  std::map<std::string, double> params_;
};

/// A registered statistical function: how to compute it from a full
/// column, and whether its value "reflects an ordering on the input
/// data" (§4.2) — order-dependent functions cannot be finite-differenced
/// exactly and fall back to the window technique or full recomputation.
struct FunctionDescriptor {
  std::string name;
  bool order_dependent = false;
  /// Full (re)computation over the non-missing values of one column.
  std::function<Result<SummaryResult>(const std::vector<double>&,
                                      const FunctionParams&)>
      compute;
};

/// The Management Database's function dictionary (§3.2: it stores "the
/// functions that are applied to [the data]"). Pre-populated with the
/// battery the paper lists — min, max, mean, median, quartiles, mode,
/// counts, histograms — plus variance/stddev/trimmed-mean/quantiles.
class FunctionRegistry {
 public:
  /// A registry with all built-in functions installed.
  static FunctionRegistry WithBuiltins();

  Status Register(FunctionDescriptor desc);
  Result<const FunctionDescriptor*> Find(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Convenience: compute `function` over `data` with `params`.
  Result<SummaryResult> Compute(const std::string& function,
                                const std::vector<double>& data,
                                const FunctionParams& params) const;

 private:
  std::map<std::string, FunctionDescriptor> functions_;
};

}  // namespace statdb

#endif  // STATDB_RULES_FUNCTION_REGISTRY_H_

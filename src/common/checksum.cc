#include "common/checksum.h"

#include <array>

namespace statdb {
namespace {

// Table for the reflected Castagnoli polynomial, built once at startup.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t state, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  for (size_t i = 0; i < len; ++i) {
    state = table[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(kCrc32cInit, data, len) ^ kCrc32cXorOut;
}

}  // namespace statdb

#ifndef STATDB_COMMON_RESULT_H_
#define STATDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace statdb {

/// Either a value of type T or a non-OK Status, never both.
///
/// Mirrors absl::StatusOr. Constructing from an OK status without a value
/// is a programming error and is rewritten to an INTERNAL error.
///
/// Class-level [[nodiscard]], like Status: dropping a Result drops the
/// error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// On an rvalue Result the status is returned by value: callers write
  /// `SomeCall().status()` and bind the answer to a const reference, which
  /// would dangle if this handed out a reference into the temporary.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace statdb

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define STATDB_ASSIGN_OR_RETURN(lhs, rexpr)             \
  STATDB_ASSIGN_OR_RETURN_IMPL_(                        \
      STATDB_RESULT_CONCAT_(_statdb_result, __LINE__), lhs, rexpr)

#define STATDB_RESULT_CONCAT_INNER_(a, b) a##b
#define STATDB_RESULT_CONCAT_(a, b) STATDB_RESULT_CONCAT_INNER_(a, b)

#define STATDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#endif  // STATDB_COMMON_RESULT_H_

#ifndef STATDB_COMMON_SYNC_H_
#define STATDB_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

namespace statdb {

/// statdb::sync — annotated capability types (DESIGN.md §13).
///
/// Every lock in statdb goes through this header so the locking
/// discipline lives in the type system instead of in comments: each
/// guarded field says which mutex guards it (STATDB_GUARDED_BY), each
/// `...Locked()` helper says which capability its caller must hold
/// (STATDB_REQUIRES), and Clang's -Wthread-safety analysis (the CI
/// thread-safety lane builds with -Wthread-safety -Werror) rejects any
/// access that violates the contract at compile time. Under GCC and
/// other non-Clang compilers the attributes expand to nothing and the
/// wrappers cost exactly what std::mutex / std::lock_guard cost.
///
/// Project rule (enforced by scripts/statdb_lint.py): no naked
/// std::mutex / std::lock_guard / std::unique_lock / std::shared_mutex /
/// std::condition_variable outside this file.

// --- Clang Thread Safety Analysis attribute macros --------------------------

#if defined(__clang__) && (!defined(SWIG))
#define STATDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define STATDB_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define STATDB_CAPABILITY(x) STATDB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define STATDB_SCOPED_CAPABILITY STATDB_THREAD_ANNOTATION_(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define STATDB_GUARDED_BY(x) STATDB_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer-target annotation: dereferences require holding `x`.
#define STATDB_PT_GUARDED_BY(x) STATDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function annotation: the caller must hold the capability exclusively.
#define STATDB_REQUIRES(...) \
  STATDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function annotation: the caller must hold the capability (shared ok).
#define STATDB_REQUIRES_SHARED(...) \
  STATDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the capability (exclusively / shared).
#define STATDB_ACQUIRE(...) \
  STATDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define STATDB_ACQUIRE_SHARED(...) \
  STATDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: releases the capability.
#define STATDB_RELEASE(...) \
  STATDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define STATDB_RELEASE_SHARED(...) \
  STATDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Releases a capability regardless of whether it is held exclusively
/// or shared (scoped-capability destructors).
#define STATDB_RELEASE_GENERIC(...) \
  STATDB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function annotation: tries to acquire; returns `ret` on success.
#define STATDB_TRY_ACQUIRE(...) \
  STATDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the capability
/// (deadlock prevention: public entry points that take the lock).
#define STATDB_EXCLUDES(...) \
  STATDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function annotation: the returned reference/pointer IS the named
/// capability (accessors that expose a private mutex, e.g. to the
/// structural auditor).
#define STATDB_RETURN_CAPABILITY(x) \
  STATDB_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (adopted locks, code
/// reached only from locked contexts the analysis cannot see).
#define STATDB_ASSERT_CAPABILITY(x) \
  STATDB_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch. Allowed ONLY inside src/common/sync.h (the lint and
/// review rule); everything else must restructure instead of suppress.
#define STATDB_NO_THREAD_SAFETY_ANALYSIS \
  STATDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

// --- capability types -------------------------------------------------------

/// Exclusive mutex. Identical cost to std::mutex; the wrapper exists so
/// the capability attribute can be attached and so CondVar can reach the
/// native handle.
class STATDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() STATDB_ACQUIRE() { mu_.lock(); }
  void Unlock() STATDB_RELEASE() { mu_.unlock(); }
  bool TryLock() STATDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the analysis) that the lock is held on a path it
  /// cannot prove — use sparingly; prefer STATDB_REQUIRES.
  void AssertHeld() const STATDB_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex for read-mostly registries.
class STATDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() STATDB_ACQUIRE() { mu_.lock(); }
  void Unlock() STATDB_RELEASE() { mu_.unlock(); }
  void ReaderLock() STATDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() STATDB_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (the std::lock_guard replacement).
class STATDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STATDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() STATDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex (writers).
class STATDB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) STATDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() STATDB_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over a SharedMutex (readers).
class STATDB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) STATDB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() STATDB_RELEASE_GENERIC() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to statdb::Mutex.
///
/// Wait() requires the capability: the analysis knows the mutex is held
/// across the wait (it is atomically released while blocked and
/// re-acquired before returning, like std::condition_variable). Use an
/// explicit `while (!predicate) cv.Wait(mu);` loop rather than a
/// predicate lambda — the analysis sees through the loop but not
/// through a closure.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) STATDB_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then hand
    // ownership back so the MutexLock/Unlock bookkeeping stays paired.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed wait: returns false if `timeout_ms` elapsed without a notify
  /// (the caller re-checks its predicate either way — spurious wakeups
  /// behave exactly like std::condition_variable's).
  bool WaitFor(Mutex& mu, int64_t timeout_ms) STATDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    std::cv_status st =
        cv_.wait_for(native, std::chrono::milliseconds(timeout_ms));
    native.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace statdb

#endif  // STATDB_COMMON_SYNC_H_

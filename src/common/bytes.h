#ifndef STATDB_COMMON_BYTES_H_
#define STATDB_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace statdb {

/// Append-only little-endian binary encoder used for Summary-Database
/// results, page payloads and catalog records.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Length-prefixed string (u32 length + bytes).
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential decoder over a byte span; every getter bounds-checks and
/// returns OUT_OF_RANGE on truncated input rather than reading past the
/// end (cached results live on storage pages and could be damaged).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();

  /// Borrows `n` raw bytes (valid while the underlying buffer lives) and
  /// advances past them.
  Result<const uint8_t*> GetRaw(size_t n) {
    STATDB_RETURN_IF_ERROR(Need(n));
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  Status Need(size_t n) {
    if (pos_ + n > size_) {
      return OutOfRangeError("truncated byte buffer");
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace statdb

#endif  // STATDB_COMMON_BYTES_H_

#ifndef STATDB_COMMON_STATUS_H_
#define STATDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace statdb {

// Canonical error codes, loosely following the absl/gRPC canonical space.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDataLoss,
  /// Transient I/O failure: the operation may succeed if retried (the
  /// storage layer's bounded-retry path consumes this code). Contrast
  /// with kDataLoss, which marks detected corruption, never retryable.
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "NOT_FOUND").
std::string_view StatusCodeName(StatusCode code);

/// Value type carrying the outcome of a fallible operation.
///
/// statdb never throws across module boundaries; every fallible public
/// function returns `Status` or `Result<T>`. A default-constructed Status
/// is OK and carries no message.
///
/// Class-level [[nodiscard]]: a dropped Status is a swallowed error, so
/// every call site must consume it (or cast through `(void)` with a
/// comment saying why the error is genuinely ignorable).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "NOT_FOUND: no such view".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Factory helpers, one per canonical code.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DataLossError(std::string message);
Status UnavailableError(std::string message);

}  // namespace statdb

/// Propagates a non-OK Status to the caller. The temporary's name is
/// uniquified per line so a use nested inside a lambda argument of
/// another use does not shadow the outer temporary.
#define STATDB_STATUS_CONCAT_INNER_(a, b) a##b
#define STATDB_STATUS_CONCAT_(a, b) STATDB_STATUS_CONCAT_INNER_(a, b)
#define STATDB_RETURN_IF_ERROR(expr) \
  STATDB_RETURN_IF_ERROR_IMPL_(      \
      STATDB_STATUS_CONCAT_(_statdb_status, __LINE__), expr)
#define STATDB_RETURN_IF_ERROR_IMPL_(tmp, expr) \
  do {                                          \
    ::statdb::Status tmp = (expr);              \
    if (!tmp.ok()) return tmp;                  \
  } while (0)

#endif  // STATDB_COMMON_STATUS_H_

#include "common/bytes.h"

namespace statdb {

Result<uint8_t> ByteReader::GetU8() {
  STATDB_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint32_t> ByteReader::GetU32() {
  STATDB_RETURN_IF_ERROR(Need(sizeof(uint32_t)));
  uint32_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  STATDB_RETURN_IF_ERROR(Need(sizeof(uint64_t)));
  uint64_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<int64_t> ByteReader::GetI64() {
  STATDB_RETURN_IF_ERROR(Need(sizeof(int64_t)));
  int64_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<double> ByteReader::GetDouble() {
  STATDB_RETURN_IF_ERROR(Need(sizeof(double)));
  double v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<std::string> ByteReader::GetString() {
  STATDB_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  STATDB_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

}  // namespace statdb

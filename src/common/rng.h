#ifndef STATDB_COMMON_RNG_H_
#define STATDB_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace statdb {

/// Deterministic pseudo-random generator used by the synthetic-data
/// generators, samplers and benchmarks so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal scaled to N(mean, stddev^2).
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Zipf-like skewed category index in [0, n), exponent `s` (s=0 uniform).
  int64_t Zipf(int64_t n, double s);

  /// Exponential with rate lambda.
  double Exponential(double lambda) {
    std::exponential_distribution<double> dist(lambda);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace statdb

#endif  // STATDB_COMMON_RNG_H_

#ifndef STATDB_COMMON_CHECKSUM_H_
#define STATDB_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace statdb {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used for page verification and WAL record framing.
/// Software slice-by-one implementation; the cost is irrelevant next to
/// the simulated device latency this repo models.
///
/// Properties relied on by callers:
///  - Crc32c(p, n) == 0x00000000 only for specific inputs, so a
///    never-stamped header (checksum field zero) is distinguished by the
///    kChecksummed flag, not by a magic CRC value.
///  - Detects all single-bit flips (CRC distance ≥ 2 for any length we
///    use), which is what the fault-injection tests assert.
uint32_t Crc32c(const void* data, size_t len);

/// Incremental form: continue a running CRC. `Crc32c(p, n)` equals
/// `Crc32cExtend(kCrc32cInit, p, n) ^ kCrc32cXorOut`.
inline constexpr uint32_t kCrc32cInit = 0xFFFFFFFFu;
inline constexpr uint32_t kCrc32cXorOut = 0xFFFFFFFFu;
uint32_t Crc32cExtend(uint32_t state, const void* data, size_t len);

}  // namespace statdb

#endif  // STATDB_COMMON_CHECKSUM_H_

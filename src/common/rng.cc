#include "common/rng.h"

#include <cmath>

namespace statdb {

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return UniformInt(0, n - 1);
  // Inverse-CDF sampling over the (truncated) Zipf mass function. n is
  // small in all our uses (category cardinalities), so a linear walk is
  // fine and avoids caching normalization tables.
  double norm = 0.0;
  for (int64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double u = UniformDouble(0.0, 1.0) * norm;
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

}  // namespace statdb

#include "simd/pushdown.h"

#include <algorithm>
#include <limits>

namespace statdb::simd {

size_t FilterRuns(const RleRun* runs, size_t n, RunValueKind kind,
                  uint64_t run_start_row, uint64_t row_begin,
                  uint64_t row_end, const RunPredicate& pred,
                  MatchedRun* out) {
  size_t matched = 0;
  uint64_t ordinal = run_start_row;
  for (size_t i = 0; i < n; ++i) {
    const RleRun& r = runs[i];
    uint64_t begin = ordinal;
    uint64_t end = ordinal + r.length;
    ordinal = end;
    if (!r.present || r.length == 0) continue;
    // Clip the run to the requested row interval (splitting it when the
    // interval edge lands mid-run).
    uint64_t lo = std::max(begin, row_begin);
    uint64_t hi = std::min(end, row_end);
    if (lo >= hi) continue;
    double v = DecodeRunValue(r.value, kind);
    if (!pred.Matches(v)) continue;
    out[matched++] = MatchedRun{v, hi - lo};
  }
  return matched;
}

uint64_t MatchedRowCount(const MatchedRun* runs, size_t n) {
  uint64_t rows = 0;
  for (size_t i = 0; i < n; ++i) rows += runs[i].length;
  return rows;
}

DescriptiveStats DescribeMatchedRuns(const MatchedRun* runs, size_t n) {
  DescriptiveStats s;
  uint64_t count = 0;
  double sum = 0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const MatchedRun& r = runs[i];
    if (r.length == 0) continue;
    count += r.length;
    sum += static_cast<double>(r.length) * r.value;
    if (r.value < mn) mn = r.value;
    if (r.value > mx) mx = r.value;
  }
  if (count == 0) return s;
  s.count = count;
  s.sum = sum;
  s.mean = sum / static_cast<double>(count);
  double m2 = 0;
  for (size_t i = 0; i < n; ++i) {
    const MatchedRun& r = runs[i];
    if (r.length == 0) continue;
    double d = r.value - s.mean;
    m2 += static_cast<double>(r.length) * d * d;
  }
  s.m2 = m2;
  if (mn > mx) {
    mn = mx = std::numeric_limits<double>::quiet_NaN();
  }
  s.min = mn;
  s.max = mx;
  return s;
}

}  // namespace statdb::simd

#ifndef STATDB_SIMD_DISPATCH_H_
#define STATDB_SIMD_DISPATCH_H_

#include <cstdint>

#include "common/status.h"

namespace statdb::simd {

/// statdb::simd — vectorized batch kernels for the mergeable partial
/// statistics (DESIGN.md §14).
///
/// ISA dispatch is resolved per call from three inputs: what the compiler
/// could build (kernels_sse2.cc / kernels_avx2.cc are compiled per-TU
/// with their own flags), what the CPU reports at runtime, and an
/// optional forced override for tests. Every level computes the same
/// fixed 4-logical-lane reduction (kernels.h), so forcing a level changes
/// nothing but the instruction encoding — the parity suite proves the
/// outputs bit-identical across levels.
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
};

const char* LevelName(SimdLevel level);

/// Highest level this binary was compiled with.
SimdLevel CompiledLevel();

/// Compiled in AND supported by the running CPU.
bool LevelAvailable(SimdLevel level);

/// The level kernels dispatch to: the forced override if one is set,
/// otherwise the best available level.
SimdLevel ActiveLevel();

/// Forces every subsequent kernel call onto `level` (parity tests sweep
/// all paths). Fails with UNAVAILABLE when the level is not compiled in
/// or the CPU lacks it. Takes effect process-wide (a relaxed atomic —
/// test-only plumbing, not a per-query knob).
Status ForceLevel(SimdLevel level);

/// Returns dispatch to automatic selection.
void ClearForcedLevel();

}  // namespace statdb::simd

#endif  // STATDB_SIMD_DISPATCH_H_

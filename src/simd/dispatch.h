#ifndef STATDB_SIMD_DISPATCH_H_
#define STATDB_SIMD_DISPATCH_H_

#include <cstdint>

#include "common/status.h"

namespace statdb::simd {

/// statdb::simd — vectorized batch kernels for the mergeable partial
/// statistics (DESIGN.md §14).
///
/// ISA dispatch is resolved per call from three inputs: what the compiler
/// could build (kernels_sse2.cc / kernels_avx2.cc are compiled per-TU
/// with their own flags), what the CPU reports at runtime, and an
/// optional forced override for tests. Every level computes the same
/// fixed 4-logical-lane reduction (kernels.h), so forcing a level changes
/// nothing but the instruction encoding — the parity suite proves the
/// outputs bit-identical across levels.
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
};

const char* LevelName(SimdLevel level);

/// Highest level this binary was compiled with.
SimdLevel CompiledLevel();

/// Compiled in AND supported by the running CPU.
bool LevelAvailable(SimdLevel level);

/// The level kernels dispatch to: the forced override if one is set,
/// otherwise the best available level.
SimdLevel ActiveLevel();

/// Forces every subsequent kernel call onto `level` (parity tests sweep
/// all paths). Fails with UNAVAILABLE when the level is not compiled in
/// or the CPU lacks it. Takes effect process-wide through a seq_cst
/// atomic, so concurrent kernel calls always observe a coherent level —
/// but the override itself is still a process-wide knob: prefer
/// ScopedForceLevel so an early test exit cannot leak it into code that
/// runs after (concurrent sessions, later tests in the same binary).
Status ForceLevel(SimdLevel level);

/// Returns dispatch to automatic selection.
void ClearForcedLevel();

/// RAII override: saves the previous forced level (if any), forces
/// `level` for its lifetime, and restores the saved state on scope exit
/// — including early exits via ASSERT_* or error returns. When `level`
/// is unavailable the guard is inert (dispatch is untouched) and ok()
/// is false with the UNAVAILABLE status in status().
class ScopedForceLevel {
 public:
  explicit ScopedForceLevel(SimdLevel level);
  ~ScopedForceLevel();

  ScopedForceLevel(const ScopedForceLevel&) = delete;
  ScopedForceLevel& operator=(const ScopedForceLevel&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  Status status_;
  int previous_ = -1;  // -1 = no override was active
  bool armed_ = false;
};

}  // namespace statdb::simd

#endif  // STATDB_SIMD_DISPATCH_H_

#ifndef STATDB_SIMD_KERNELS_INTERNAL_H_
#define STATDB_SIMD_KERNELS_INTERNAL_H_

#include <cstddef>

#include "simd/kernels.h"

namespace statdb::simd::internal {

/// The per-ISA lane primitives behind the span kernels. Each function
/// implements the fixed 4-logical-lane reduction of kernels.h: element i
/// folds into lane i % 4 in element order; tails (n % 4 elements) are
/// folded scalar into the already-extracted lane values, which is the
/// same addition sequence the scalar path performs — that is what makes
/// the ISA levels bit-identical. Composition (two-pass moments, NaN
/// finish) lives once in kernels.cc and is shared by every level.
struct LaneOps {
  /// out[l] = sum of data[i] with i % 4 == l.
  void (*lane_sum)(const double* data, size_t n, double out[4]);
  /// out[l] = sum of (data[i] - center)^2 with i % 4 == l.
  void (*lane_sum_sq_dev)(const double* data, size_t n, double center,
                          double out[4]);
  /// out[l] = sum of (xs[i] - cx) * (ys[i] - cy) with i % 4 == l.
  void (*lane_sum_prod_dev)(const double* xs, const double* ys, size_t n,
                            double cx, double cy, double out[4]);
  /// NaN-skipping min/max seeded from +inf/-inf (exact values, so no
  /// lane discipline is needed for bit-identity).
  void (*min_max)(const double* data, size_t n, double* mn, double* mx);
};

const LaneOps& ScalarOps();
/// Fall back to ScalarOps() when their ISA is not compiled in.
const LaneOps& Sse2Ops();
const LaneOps& Avx2Ops();

/// The documented lane combine: (l0 + l1) + (l2 + l3).
inline double ReduceLanes(const double lanes[4]) {
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

DescriptiveStats DescribeWith(const LaneOps& ops, const double* data,
                              size_t n);
Comoments ComomentWith(const LaneOps& ops, const double* xs,
                       const double* ys, size_t n);

}  // namespace statdb::simd::internal

#endif  // STATDB_SIMD_KERNELS_INTERNAL_H_

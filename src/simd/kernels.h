#ifndef STATDB_SIMD_KERNELS_H_
#define STATDB_SIMD_KERNELS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"
#include "stats/descriptive.h"
#include "storage/rle.h"

namespace statdb::simd {

/// Batch kernels over contiguous value spans and RLE run records
/// (DESIGN.md §14). By project rule (statdb_lint: simd-span-inputs)
/// nothing in src/simd/ takes a per-row callback: inputs are raw
/// pointer + length spans, outputs are plain mergeable partial states.
///
/// Reduction-order guarantee
/// -------------------------
/// Every span kernel accumulates through exactly FOUR logical lanes:
/// element i folds into lane i % 4, each lane sums sequentially in
/// element order, and the lanes combine as (l0 + l1) + (l2 + l3). The
/// scalar path keeps 4 named accumulators, the SSE2 path two __m128d
/// (lane pairs 0/1 and 2/3), the AVX2 path one __m256d — the same
/// additions in the same order, so all three ISA levels are
/// BIT-IDENTICAL, not merely close. Versus the serial Welford oracle
/// (ComputeDescriptive) the 4-lane order differs, so sum/mean/m2 agree
/// to the Chan-et-al. tolerance only; count and min/max are exact.
///
/// Moments use two passes (lane-summed mean, then lane-summed squared
/// deviations about it) rather than sumsq - sum²/n, so the kernel's m2
/// is at least as well-conditioned as Welford's.
///
/// NaN contract: min/max consider only non-NaN values (update rule
/// `if (x < min) min = x` seeded from +inf/-inf). A non-empty span whose
/// values are all NaN yields min = max = NaN; sum/mean/m2 are NaN
/// whenever any value is NaN (IEEE propagation, same as the serial
/// path). Empty spans yield the zeroed DescriptiveStats.

/// How stored int64 raws decode to doubles (mirrors TransposedTable's
/// cell encoding: kInt64 casts, kDoubleBits reinterprets).
enum class RunValueKind : uint8_t {
  kInt64 = 0,
  kDoubleBits = 1,
};

inline double DecodeRunValue(int64_t raw, RunValueKind kind) {
  return kind == RunValueKind::kInt64
             ? static_cast<double>(raw)
             : std::bit_cast<double>(raw);
}

/// Bivariate partial state mirroring exec's ComomentStats field-for-field
/// (simd sits below exec in the DAG, so it carries its own POD).
struct Comoments {
  uint64_t n = 0;
  double mean_x = 0;
  double mean_y = 0;
  double m2x = 0;
  double m2y = 0;
  double cxy = 0;
};

/// One-pass-shaped descriptive statistics of a span, via the 4-lane
/// two-pass reduction above. Dispatches on ActiveLevel().
DescriptiveStats DescribeSpan(const double* data, size_t n);

/// Co-moment accumulation over row-aligned pairs, 4-lane two-pass.
/// Dispatches on ActiveLevel().
Comoments ComomentSpan(const double* xs, const double* ys, size_t n);

/// Per-level entry points (parity tests assert these bit-identical;
/// production code calls the dispatching wrappers above). The SSE2/AVX2
/// variants fall back to scalar when not compiled in.
DescriptiveStats DescribeSpanScalar(const double* data, size_t n);
DescriptiveStats DescribeSpanSse2(const double* data, size_t n);
DescriptiveStats DescribeSpanAvx2(const double* data, size_t n);
Comoments ComomentSpanScalar(const double* xs, const double* ys, size_t n);
Comoments ComomentSpanSse2(const double* xs, const double* ys, size_t n);
Comoments ComomentSpanAvx2(const double* xs, const double* ys, size_t n);

/// Compressed-domain aggregation: descriptive statistics directly over
/// RLE run records without materializing cells. A present run of value v
/// and length k contributes k, k·v to count/sum in O(1) and one min/max
/// update; m2 adds k·(v - mean)² in a second pass over the runs. Runs
/// with present == false are skipped (they encode missing cells).
/// Accumulation is sequential in run order (deterministic; documented as
/// tolerance-class versus the per-cell serial oracle for sum/mean/m2,
/// exact for count/min/max). O(runs) total work — this is the whole
/// point: cost scales with runs, not rows.
DescriptiveStats DescribeRuns(const RleRun* runs, size_t n,
                              RunValueKind kind);

}  // namespace statdb::simd

#endif  // STATDB_SIMD_KERNELS_H_

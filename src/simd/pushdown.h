#ifndef STATDB_SIMD_PUSHDOWN_H_
#define STATDB_SIMD_PUSHDOWN_H_

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"
#include "storage/rle.h"

namespace statdb::simd {

/// Predicate/aggregate pushdown over RLE runs (DESIGN.md §14): the §4.3
/// "database machine" scan offload generalized into a filtered aggregate
/// that never materializes rows. A predicate on the scanned attribute is
/// decided once per run — a matching run of length k contributes k rows
/// in O(1) — and runs are clipped to a row interval so callers can split
/// work at arbitrary boundaries (chunked scans, predicates that split a
/// run mid-way).

/// Per-run predicate on the decoded double value. Comparisons follow
/// IEEE semantics, so a NaN cell matches only kAll — exactly what the
/// filter-then-materialize path's double comparisons do.
struct RunPredicate {
  enum class Kind : uint8_t {
    kAll = 0,    // every non-missing cell
    kEqual = 1,  // value == equal
    kRange = 2,  // lo <= value <= hi (closed)
  };
  Kind kind = Kind::kAll;
  double equal = 0;
  double lo = 0;
  double hi = 0;

  bool Matches(double v) const {
    switch (kind) {
      case Kind::kAll: return true;
      case Kind::kEqual: return v == equal;
      case Kind::kRange: return v >= lo && v <= hi;
    }
    return false;
  }
};

/// A decoded, clipped, predicate-matching run: `value` repeated `length`
/// times.
struct MatchedRun {
  double value = 0;
  uint64_t length = 0;
};

/// Filters `runs` (whose first cell has row ordinal `run_start_row`)
/// against `pred`, clipped to rows [row_begin, row_end). Missing runs
/// (present == false) never match. Writes at most `n` MatchedRun records
/// to `out` (caller-sized) and returns how many were written. A run
/// straddling an interval edge is split: only its in-interval cells
/// count.
size_t FilterRuns(const RleRun* runs, size_t n, RunValueKind kind,
                  uint64_t run_start_row, uint64_t row_begin,
                  uint64_t row_end, const RunPredicate& pred,
                  MatchedRun* out);

/// Total rows across matched runs.
uint64_t MatchedRowCount(const MatchedRun* runs, size_t n);

/// Descriptive statistics over matched runs, same compressed-domain math
/// and NaN contract as DescribeRuns (count/min/max exact, moments
/// tolerance-class vs. a per-cell oracle, deterministic run order).
DescriptiveStats DescribeMatchedRuns(const MatchedRun* runs, size_t n);

}  // namespace statdb::simd

#endif  // STATDB_SIMD_PUSHDOWN_H_

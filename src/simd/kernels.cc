#include "simd/kernels.h"

#include <cmath>
#include <limits>

#include "simd/kernels_internal.h"

namespace statdb::simd {

namespace internal {

namespace {

void LaneSumScalar(const double* data, size_t n, double out[4]) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    l0 += data[i];
    l1 += data[i + 1];
    l2 += data[i + 2];
    l3 += data[i + 3];
  }
  out[0] = l0;
  out[1] = l1;
  out[2] = l2;
  out[3] = l3;
  for (size_t t = 0; n4 + t < n; ++t) out[t] += data[n4 + t];
}

void LaneSumSqDevScalar(const double* data, size_t n, double center,
                        double out[4]) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    double d0 = data[i] - center;
    double d1 = data[i + 1] - center;
    double d2 = data[i + 2] - center;
    double d3 = data[i + 3] - center;
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  out[0] = l0;
  out[1] = l1;
  out[2] = l2;
  out[3] = l3;
  for (size_t t = 0; n4 + t < n; ++t) {
    double d = data[n4 + t] - center;
    out[t] += d * d;
  }
}

void LaneSumProdDevScalar(const double* xs, const double* ys, size_t n,
                          double cx, double cy, double out[4]) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    l0 += (xs[i] - cx) * (ys[i] - cy);
    l1 += (xs[i + 1] - cx) * (ys[i + 1] - cy);
    l2 += (xs[i + 2] - cx) * (ys[i + 2] - cy);
    l3 += (xs[i + 3] - cx) * (ys[i + 3] - cy);
  }
  out[0] = l0;
  out[1] = l1;
  out[2] = l2;
  out[3] = l3;
  for (size_t t = 0; n4 + t < n; ++t) {
    out[t] += (xs[n4 + t] - cx) * (ys[n4 + t] - cy);
  }
}

void MinMaxScalar(const double* data, size_t n, double* mn_out,
                  double* mx_out) {
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    double x = data[i];
    if (x < mn) mn = x;
    if (x > mx) mx = x;
  }
  *mn_out = mn;
  *mx_out = mx;
}

}  // namespace

const LaneOps& ScalarOps() {
  static const LaneOps ops{LaneSumScalar, LaneSumSqDevScalar,
                           LaneSumProdDevScalar, MinMaxScalar};
  return ops;
}

DescriptiveStats DescribeWith(const LaneOps& ops, const double* data,
                              size_t n) {
  DescriptiveStats s;
  if (n == 0) return s;
  s.count = n;
  double lanes[4];
  ops.lane_sum(data, n, lanes);
  s.sum = ReduceLanes(lanes);
  s.mean = s.sum / static_cast<double>(n);
  ops.lane_sum_sq_dev(data, n, s.mean, lanes);
  s.m2 = ReduceLanes(lanes);
  double mn, mx;
  ops.min_max(data, n, &mn, &mx);
  if (mn > mx) {
    // min stayed at +inf and max at -inf: every value was NaN.
    mn = mx = std::numeric_limits<double>::quiet_NaN();
  }
  s.min = mn;
  s.max = mx;
  return s;
}

Comoments ComomentWith(const LaneOps& ops, const double* xs,
                       const double* ys, size_t n) {
  Comoments c;
  if (n == 0) return c;
  c.n = n;
  double lanes[4];
  ops.lane_sum(xs, n, lanes);
  c.mean_x = ReduceLanes(lanes) / static_cast<double>(n);
  ops.lane_sum(ys, n, lanes);
  c.mean_y = ReduceLanes(lanes) / static_cast<double>(n);
  ops.lane_sum_sq_dev(xs, n, c.mean_x, lanes);
  c.m2x = ReduceLanes(lanes);
  ops.lane_sum_sq_dev(ys, n, c.mean_y, lanes);
  c.m2y = ReduceLanes(lanes);
  ops.lane_sum_prod_dev(xs, ys, n, c.mean_x, c.mean_y, lanes);
  c.cxy = ReduceLanes(lanes);
  return c;
}

}  // namespace internal

DescriptiveStats DescribeSpanScalar(const double* data, size_t n) {
  return internal::DescribeWith(internal::ScalarOps(), data, n);
}

DescriptiveStats DescribeSpanSse2(const double* data, size_t n) {
  return internal::DescribeWith(internal::Sse2Ops(), data, n);
}

DescriptiveStats DescribeSpanAvx2(const double* data, size_t n) {
  return internal::DescribeWith(internal::Avx2Ops(), data, n);
}

Comoments ComomentSpanScalar(const double* xs, const double* ys, size_t n) {
  return internal::ComomentWith(internal::ScalarOps(), xs, ys, n);
}

Comoments ComomentSpanSse2(const double* xs, const double* ys, size_t n) {
  return internal::ComomentWith(internal::Sse2Ops(), xs, ys, n);
}

Comoments ComomentSpanAvx2(const double* xs, const double* ys, size_t n) {
  return internal::ComomentWith(internal::Avx2Ops(), xs, ys, n);
}

DescriptiveStats DescribeSpan(const double* data, size_t n) {
  switch (ActiveLevel()) {
    case SimdLevel::kAVX2: return DescribeSpanAvx2(data, n);
    case SimdLevel::kSSE2: return DescribeSpanSse2(data, n);
    case SimdLevel::kScalar: break;
  }
  return DescribeSpanScalar(data, n);
}

Comoments ComomentSpan(const double* xs, const double* ys, size_t n) {
  switch (ActiveLevel()) {
    case SimdLevel::kAVX2: return ComomentSpanAvx2(xs, ys, n);
    case SimdLevel::kSSE2: return ComomentSpanSse2(xs, ys, n);
    case SimdLevel::kScalar: break;
  }
  return ComomentSpanScalar(xs, ys, n);
}

DescriptiveStats DescribeRuns(const RleRun* runs, size_t n,
                              RunValueKind kind) {
  DescriptiveStats s;
  uint64_t count = 0;
  double sum = 0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const RleRun& r = runs[i];
    if (!r.present || r.length == 0) continue;
    double v = DecodeRunValue(r.value, kind);
    count += r.length;
    sum += static_cast<double>(r.length) * v;
    if (v < mn) mn = v;
    if (v > mx) mx = v;
  }
  if (count == 0) return s;
  s.count = count;
  s.sum = sum;
  s.mean = sum / static_cast<double>(count);
  double m2 = 0;
  for (size_t i = 0; i < n; ++i) {
    const RleRun& r = runs[i];
    if (!r.present || r.length == 0) continue;
    double d = DecodeRunValue(r.value, kind) - s.mean;
    m2 += static_cast<double>(r.length) * d * d;
  }
  s.m2 = m2;
  if (mn > mx) {
    mn = mx = std::numeric_limits<double>::quiet_NaN();
  }
  s.min = mn;
  s.max = mx;
  return s;
}

}  // namespace statdb::simd

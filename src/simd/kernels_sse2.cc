// SSE2 lane primitives: lanes 0/1 and 2/3 ride two __m128d accumulators,
// so lane l sees exactly the additions the scalar path gives it, in the
// same order — bit-identical by construction. This TU is compiled with
// the build's baseline flags (SSE2 is the x86-64 baseline).
#include "simd/kernels_internal.h"

#if defined(STATDB_SIMD_HAVE_SSE2)

#include <emmintrin.h>

#include <limits>

namespace statdb::simd::internal {

namespace {

void LaneSumSse2(const double* data, size_t n, double out[4]) {
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    a01 = _mm_add_pd(a01, _mm_loadu_pd(data + i));
    a23 = _mm_add_pd(a23, _mm_loadu_pd(data + i + 2));
  }
  _mm_storeu_pd(out, a01);
  _mm_storeu_pd(out + 2, a23);
  for (size_t t = 0; n4 + t < n; ++t) out[t] += data[n4 + t];
}

void LaneSumSqDevSse2(const double* data, size_t n, double center,
                      double out[4]) {
  __m128d c = _mm_set1_pd(center);
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    __m128d d01 = _mm_sub_pd(_mm_loadu_pd(data + i), c);
    __m128d d23 = _mm_sub_pd(_mm_loadu_pd(data + i + 2), c);
    a01 = _mm_add_pd(a01, _mm_mul_pd(d01, d01));
    a23 = _mm_add_pd(a23, _mm_mul_pd(d23, d23));
  }
  _mm_storeu_pd(out, a01);
  _mm_storeu_pd(out + 2, a23);
  for (size_t t = 0; n4 + t < n; ++t) {
    double d = data[n4 + t] - center;
    out[t] += d * d;
  }
}

void LaneSumProdDevSse2(const double* xs, const double* ys, size_t n,
                        double cx, double cy, double out[4]) {
  __m128d vcx = _mm_set1_pd(cx);
  __m128d vcy = _mm_set1_pd(cy);
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    __m128d dx01 = _mm_sub_pd(_mm_loadu_pd(xs + i), vcx);
    __m128d dy01 = _mm_sub_pd(_mm_loadu_pd(ys + i), vcy);
    __m128d dx23 = _mm_sub_pd(_mm_loadu_pd(xs + i + 2), vcx);
    __m128d dy23 = _mm_sub_pd(_mm_loadu_pd(ys + i + 2), vcy);
    a01 = _mm_add_pd(a01, _mm_mul_pd(dx01, dy01));
    a23 = _mm_add_pd(a23, _mm_mul_pd(dx23, dy23));
  }
  _mm_storeu_pd(out, a01);
  _mm_storeu_pd(out + 2, a23);
  for (size_t t = 0; n4 + t < n; ++t) {
    out[t] += (xs[n4 + t] - cx) * (ys[n4 + t] - cy);
  }
}

void MinMaxSse2(const double* data, size_t n, double* mn_out,
                double* mx_out) {
  // _mm_min_pd(x, acc) keeps acc when x is NaN — the NaN-skipping update
  // rule, vectorized. Accumulators start at +/-inf and can never become
  // NaN, so the scalar lane combine below needs no NaN handling.
  __m128d vmn = _mm_set1_pd(std::numeric_limits<double>::infinity());
  __m128d vmx = _mm_set1_pd(-std::numeric_limits<double>::infinity());
  size_t n2 = n & ~size_t{1};
  for (size_t i = 0; i < n2; i += 2) {
    __m128d x = _mm_loadu_pd(data + i);
    vmn = _mm_min_pd(x, vmn);
    vmx = _mm_max_pd(x, vmx);
  }
  double lmn[2], lmx[2];
  _mm_storeu_pd(lmn, vmn);
  _mm_storeu_pd(lmx, vmx);
  double mn = lmn[0] < lmn[1] ? lmn[0] : lmn[1];
  double mx = lmx[0] > lmx[1] ? lmx[0] : lmx[1];
  if (n2 < n) {
    double x = data[n2];
    if (x < mn) mn = x;
    if (x > mx) mx = x;
  }
  *mn_out = mn;
  *mx_out = mx;
}

}  // namespace

const LaneOps& Sse2Ops() {
  static const LaneOps ops{LaneSumSse2, LaneSumSqDevSse2, LaneSumProdDevSse2,
                           MinMaxSse2};
  return ops;
}

}  // namespace statdb::simd::internal

#else  // !STATDB_SIMD_HAVE_SSE2

namespace statdb::simd::internal {

const LaneOps& Sse2Ops() { return ScalarOps(); }

}  // namespace statdb::simd::internal

#endif

#include "simd/dispatch.h"

#include <atomic>
#include <string>

namespace statdb::simd {

namespace {

/// -1 = no override; otherwise a SimdLevel value.
std::atomic<int> g_forced{-1};

bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSSE2:
      // x86-64 baseline; the SSE2 TU is only compiled on x86-64.
      return true;
    case SimdLevel::kAVX2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

const char* LevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSSE2: return "sse2";
    case SimdLevel::kAVX2: return "avx2";
  }
  return "unknown";
}

SimdLevel CompiledLevel() {
#if defined(STATDB_SIMD_HAVE_AVX2)
  return SimdLevel::kAVX2;
#elif defined(STATDB_SIMD_HAVE_SSE2)
  return SimdLevel::kSSE2;
#else
  return SimdLevel::kScalar;
#endif
}

bool LevelAvailable(SimdLevel level) {
  return static_cast<uint8_t>(level) <=
             static_cast<uint8_t>(CompiledLevel()) &&
         CpuSupports(level);
}

SimdLevel ActiveLevel() {
  int forced = g_forced.load(std::memory_order_seq_cst);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  if (LevelAvailable(SimdLevel::kAVX2)) return SimdLevel::kAVX2;
  if (LevelAvailable(SimdLevel::kSSE2)) return SimdLevel::kSSE2;
  return SimdLevel::kScalar;
}

Status ForceLevel(SimdLevel level) {
  if (!LevelAvailable(level)) {
    return UnavailableError(std::string("SIMD level not available: ") +
                            LevelName(level));
  }
  g_forced.store(static_cast<int>(level), std::memory_order_seq_cst);
  return Status::OK();
}

void ClearForcedLevel() {
  g_forced.store(-1, std::memory_order_seq_cst);
}

ScopedForceLevel::ScopedForceLevel(SimdLevel level) {
  if (!LevelAvailable(level)) {
    status_ = UnavailableError(std::string("SIMD level not available: ") +
                               LevelName(level));
    return;
  }
  // Exchange, not store: nested guards restore the outer guard's level,
  // not automatic dispatch.
  previous_ = g_forced.exchange(static_cast<int>(level),
                                std::memory_order_seq_cst);
  armed_ = true;
}

ScopedForceLevel::~ScopedForceLevel() {
  if (armed_) g_forced.store(previous_, std::memory_order_seq_cst);
}

}  // namespace statdb::simd

// AVX2 lane primitives: all four logical lanes ride one __m256d
// accumulator, reproducing the scalar path's per-lane addition order
// exactly. This is the only TU compiled with -mavx2 (no -mfma, so
// mul+add never contracts and stays bit-identical to the other levels);
// dispatch.cc gates it behind a runtime CPU check.
#include "simd/kernels_internal.h"

#if defined(STATDB_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <limits>

namespace statdb::simd::internal {

namespace {

void LaneSumAvx2(const double* data, size_t n, double out[4]) {
  __m256d acc = _mm256_setzero_pd();
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(data + i));
  }
  _mm256_storeu_pd(out, acc);
  for (size_t t = 0; n4 + t < n; ++t) out[t] += data[n4 + t];
}

void LaneSumSqDevAvx2(const double* data, size_t n, double center,
                      double out[4]) {
  __m256d c = _mm256_set1_pd(center);
  __m256d acc = _mm256_setzero_pd();
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    __m256d d = _mm256_sub_pd(_mm256_loadu_pd(data + i), c);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  _mm256_storeu_pd(out, acc);
  for (size_t t = 0; n4 + t < n; ++t) {
    double d = data[n4 + t] - center;
    out[t] += d * d;
  }
}

void LaneSumProdDevAvx2(const double* xs, const double* ys, size_t n,
                        double cx, double cy, double out[4]) {
  __m256d vcx = _mm256_set1_pd(cx);
  __m256d vcy = _mm256_set1_pd(cy);
  __m256d acc = _mm256_setzero_pd();
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), vcx);
    __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), vcy);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(dx, dy));
  }
  _mm256_storeu_pd(out, acc);
  for (size_t t = 0; n4 + t < n; ++t) {
    out[t] += (xs[n4 + t] - cx) * (ys[n4 + t] - cy);
  }
}

void MinMaxAvx2(const double* data, size_t n, double* mn_out,
                double* mx_out) {
  // Same NaN-skipping operand order as the SSE2 variant: min(x, acc)
  // keeps acc when x is NaN.
  __m256d vmn = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d vmx = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    __m256d x = _mm256_loadu_pd(data + i);
    vmn = _mm256_min_pd(x, vmn);
    vmx = _mm256_max_pd(x, vmx);
  }
  double lmn[4], lmx[4];
  _mm256_storeu_pd(lmn, vmn);
  _mm256_storeu_pd(lmx, vmx);
  double mn = lmn[0];
  double mx = lmx[0];
  for (size_t l = 1; l < 4; ++l) {
    if (lmn[l] < mn) mn = lmn[l];
    if (lmx[l] > mx) mx = lmx[l];
  }
  for (size_t t = n4; t < n; ++t) {
    double x = data[t];
    if (x < mn) mn = x;
    if (x > mx) mx = x;
  }
  *mn_out = mn;
  *mx_out = mx;
}

}  // namespace

const LaneOps& Avx2Ops() {
  static const LaneOps ops{LaneSumAvx2, LaneSumSqDevAvx2, LaneSumProdDevAvx2,
                           MinMaxAvx2};
  return ops;
}

}  // namespace statdb::simd::internal

#else  // !STATDB_SIMD_HAVE_AVX2

namespace statdb::simd::internal {

const LaneOps& Avx2Ops() { return Sse2Ops(); }

}  // namespace statdb::simd::internal

#endif

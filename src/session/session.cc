#include "session/session.h"

#include <chrono>
#include <utility>

#include "causal/trace_context.h"
#include "flight/flight_recorder.h"
#include "obs/trace.h"
#include "storage/column_file.h"
#include "summary/summary_key.h"

namespace statdb::session {

// ---------------------------------------------------------------------------
// Session

/// Brackets one session operation: refuses new work once the session is
/// closing, and keeps Close() blocked until in-flight work drains. The
/// seq_cst increment-then-recheck pairs with Close's set-then-wait: either
/// this guard sees closing_ and backs out, or Close sees the increment
/// and waits for the matching decrement.
class Session::OpGuard {
 public:
  explicit OpGuard(Session* s) : s_(s) {
    if (s_->closing_.load(std::memory_order_seq_cst)) {
      ok_ = false;
      return;
    }
    s_->in_flight_.fetch_add(1, std::memory_order_seq_cst);
    counted_ = true;
    if (s_->closing_.load(std::memory_order_seq_cst)) ok_ = false;
  }
  ~OpGuard() {
    if (!counted_) return;
    if (s_->in_flight_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        s_->closing_.load(std::memory_order_seq_cst)) {
      // Last operation out wakes the closer (who waits on the manager's
      // admission condvar).
      MutexLock lock(s_->mgr_->admission_mu_);
      s_->mgr_->admission_cv_.NotifyAll();
    }
  }
  bool ok() const { return ok_; }

  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  Session* s_;
  bool ok_ = true;
  bool counted_ = false;
};

Session::Session(SessionManager* mgr, uint64_t id, std::string label,
                 uint64_t pinned_seq, int epoch_slot)
    : mgr_(mgr),
      id_(id),
      label_(std::move(label)),
      pinned_seq_(pinned_seq),
      epoch_slot_(epoch_slot) {}

// Per-session scope bumps. Each bumps three ledgers in one place — the
// session atomic (stats()), the per-label instrument and the manager's
// global mirror — which is what makes the attribution invariant
// (sum of per-session == global) bit-exact rather than approximate.
void Session::BumpQueries() {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (m_queries_ != nullptr) m_queries_->Inc();
  if (mgr_->g_queries_ != nullptr) mgr_->g_queries_->Inc();
}

void Session::BumpCacheHits() {
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  if (m_cache_hits_ != nullptr) m_cache_hits_->Inc();
  if (mgr_->g_cache_hits_ != nullptr) mgr_->g_cache_hits_->Inc();
}

void Session::BumpRows(uint64_t rows) {
  if (rows == 0) return;
  const uint64_t pages =
      (rows + ColumnFile::kCellsPerPage - 1) / ColumnFile::kCellsPerPage;
  rows_.fetch_add(rows, std::memory_order_relaxed);
  pages_.fetch_add(pages, std::memory_order_relaxed);
  if (m_rows_ != nullptr) m_rows_->Inc(rows);
  if (m_pages_ != nullptr) m_pages_->Inc(pages);
  if (mgr_->g_rows_ != nullptr) mgr_->g_rows_->Inc(rows);
  if (mgr_->g_pages_ != nullptr) mgr_->g_pages_->Inc(pages);
}

void Session::RecordQueryMs(double ms) {
  if (m_query_ms_ != nullptr) m_query_ms_->Record(ms);
  if (mgr_->g_query_ms_ != nullptr) mgr_->g_query_ms_->Record(ms);
}

Result<QueryAnswer> Session::Query(const std::string& view,
                                   const std::string& function,
                                   const std::string& attribute,
                                   const FunctionParams& params) {
  OpGuard op(this);
  if (!op.ok()) return FailedPreconditionError("session is closing");
  // The session is the one entry point that knows which analyst is
  // asking: mint the causal context here, with the session id stamped,
  // so every downstream flight event (I/O retries, faults) joins this
  // query's trace (DESIGN.md §17).
  causal::ScopedTraceContext scope(causal::Mint(id_));
  TraceTimer timer;
  BumpQueries();

  const std::string key =
      SummaryKey::Of(function, attribute, params.Encode()).Encode();

  // Versioned summary timeline first (satellite fix: never the head
  // SummaryDatabase, whose versions Rollback clamps out from under
  // pinned readers). Entries are immutable value copies, so this probe
  // needs no epoch protection.
  if (Result<SummaryResult> cached =
          mgr_->timeline_.Lookup(view, key, pinned_seq_);
      cached.ok()) {
    BumpCacheHits();
    RecordQueryMs(timer.ElapsedMs());
    QueryAnswer a;
    a.result = *cached;
    a.source = AnswerSource::kCacheHit;
    return a;
  }

  // Everything from routing resolution through the timeline insert runs
  // inside one epoch critical section. That covers the live-byte reads
  // (a writer's grace period waits us out before mutating in place) and
  // makes the insert race-free against CloseView: a writer that could
  // invalidate our open cache window must Synchronize() after blocking
  // the route, which orders our Insert before its CloseView.
  EpochGuard epoch(&mgr_->epochs_, epoch_slot_);
  STATDB_ASSIGN_OR_RETURN(ColumnRoute route,
                          mgr_->registry_.Resolve(view, attribute,
                                                  pinned_seq_));

  // Same meta-data gate as the head query path (§3.2), applied to the
  // schema entry at the pinned seq.
  Schema one;
  one.Add(route.attr);
  STATDB_RETURN_IF_ERROR(
      StatisticalDbms::CheckQueryable(one, function, attribute));

  std::vector<double> live_data;
  const std::vector<double>* data = nullptr;
  if (route.source == ColumnRoute::Source::kSnapshot) {
    snapshot_reads_.fetch_add(1, std::memory_order_relaxed);
    if (route.snapshot->numeric == nullptr) {
      return InvalidArgumentError("attribute is not numeric: " + attribute);
    }
    data = route.snapshot->numeric.get();
  } else {
    live_reads_.fetch_add(1, std::memory_order_relaxed);
    STATDB_ASSIGN_OR_RETURN(live_data,
                            route.live->ReadNumericColumn(attribute));
    data = &live_data;
  }

  BumpRows(data->size());
  STATDB_ASSIGN_OR_RETURN(
      SummaryResult result,
      mgr_->dbms_->management_db().functions().Compute(function, *data,
                                                       params));
  mgr_->timeline_.Insert(view, key, route.window_from, route.window_to,
                         result);
  RecordQueryMs(timer.ElapsedMs());

  QueryAnswer a;
  a.result = result;
  a.source = AnswerSource::kComputed;
  return a;
}

Result<std::vector<Value>> Session::ReadColumn(const std::string& view,
                                               const std::string& column) {
  OpGuard op(this);
  if (!op.ok()) return FailedPreconditionError("session is closing");
  causal::ScopedTraceContext scope(causal::Mint(id_));

  EpochGuard epoch(&mgr_->epochs_, epoch_slot_);
  STATDB_ASSIGN_OR_RETURN(
      ColumnRoute route, mgr_->registry_.Resolve(view, column, pinned_seq_));
  if (route.source == ColumnRoute::Source::kSnapshot) {
    snapshot_reads_.fetch_add(1, std::memory_order_relaxed);
    BumpRows(route.snapshot->values->size());
    return *route.snapshot->values;
  }
  live_reads_.fetch_add(1, std::memory_order_relaxed);
  Result<std::vector<Value>> values = route.live->ReadColumn(column);
  if (values.ok()) BumpRows(values.value().size());
  return values;
}

Result<std::vector<std::string>> Session::Columns(const std::string& view) {
  OpGuard op(this);
  if (!op.ok()) return FailedPreconditionError("session is closing");
  return mgr_->registry_.Columns(view, pinned_seq_);
}

Status Session::Close() { return mgr_->Close(this); }

Session::Stats Session::stats() const {
  Stats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.live_reads = live_reads_.load(std::memory_order_relaxed);
  s.snapshot_reads = snapshot_reads_.load(std::memory_order_relaxed);
  s.rows = rows_.load(std::memory_order_relaxed);
  s.pages = pages_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// MutationScope

MutationScope::MutationScope(SessionManager* mgr, Kind kind, std::string view,
                             ConcreteView* live)
    : mgr_(mgr), kind_(kind), view_(std::move(view)), begin_live_(live) {
  if (mgr_ == nullptr) return;  // sessions disabled: inert
  status_ = mgr_->BeginMutation(kind_, view_, live);
  // On failure BeginMutation has already released writer serialization
  // and left reader routing untouched; the caller must abort.
  armed_ = status_.ok();
}

MutationScope::~MutationScope() {
  if (!armed_ || published_) return;
  if (kind_ == Kind::kDrop) {
    mgr_->EndMutation(view_, nullptr, /*dropped=*/true);
  } else {
    mgr_->EndMutation(view_, begin_live_, /*dropped=*/false);
  }
}

void MutationScope::Publish(ConcreteView* live) {
  if (!armed_ || published_) return;
  published_ = true;
  mgr_->EndMutation(view_, live, /*dropped=*/false);
}

void MutationScope::PublishDropped() {
  if (!armed_ || published_) return;
  published_ = true;
  mgr_->EndMutation(view_, nullptr, /*dropped=*/true);
}

// ---------------------------------------------------------------------------
// SessionManager

SessionManager::SessionManager(StatisticalDbms* dbms, SessionConfig config)
    : dbms_(dbms), config_(std::move(config)) {
  if (config_.max_sessions < 1) config_.max_sessions = 1;
  if (config_.max_sessions > static_cast<size_t>(EpochManager::kSlots)) {
    config_.max_sessions = EpochManager::kSlots;
  }
  slot_used_.assign(config_.max_sessions, false);
  // Global mirrors of the per-session scopes. Resolved once; bumped only
  // from the Session::Bump* helpers, never directly.
  MetricsRegistry& metrics = dbms_->metrics();
  g_queries_ = metrics.GetCounter("sessions.queries");
  g_cache_hits_ = metrics.GetCounter("sessions.cache_hits");
  g_rows_ = metrics.GetCounter("sessions.rows");
  g_pages_ = metrics.GetCounter("sessions.pages");
  g_flushes_ = metrics.GetCounter("sessions.flushes");
  g_query_ms_ = metrics.GetHistogram("sessions.query_ms");
}

SessionManager::~SessionManager() {
  CloseAll();
  // No reader thread may touch a session handle once the manager dies;
  // only now is it safe to free the retired (fail-closed) handles.
  MutexLock lock(admission_mu_);
  retired_sessions_.clear();
}

void SessionManager::BootstrapView(const std::string& view,
                                   ConcreteView* live) {
  registry_.RegisterView(view, live, live->schema(), current_seq());
}

Result<Session*> SessionManager::Open(std::string label) {
  MutexLock lock(admission_mu_);
  // A mutation mid-protocol may have skipped its capture because nobody
  // was pinned; opening now would pin a seq whose pre-image was never
  // taken. Mutations are short (capture + grace period) — wait them out.
  while (mutation_in_flight_) admission_cv_.Wait(admission_mu_);

  if (sessions_.size() >= config_.max_sessions) {
    if (config_.policy == SessionConfig::OverflowPolicy::kReject) {
      ++rejected_;
      return ResourceExhaustedError(
          "session limit reached (max_sessions=" +
          std::to_string(config_.max_sessions) + ")");
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.queue_timeout_ms);
    while (sessions_.size() >= config_.max_sessions || mutation_in_flight_) {
      const auto now = std::chrono::steady_clock::now();
      const int64_t remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count();
      if (remaining_ms <= 0) {
        ++queue_timeouts_;
        return UnavailableError("session admission queue timed out after " +
                                std::to_string(config_.queue_timeout_ms) +
                                " ms");
      }
      admission_cv_.WaitFor(admission_mu_, remaining_ms);
    }
  }

  int slot = -1;
  for (size_t i = 0; i < slot_used_.size(); ++i) {
    if (!slot_used_[i]) {
      slot = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0) {
    return InternalError("session slot accounting out of sync");
  }
  slot_used_[slot] = true;

  const uint64_t id = next_id_++;
  const uint64_t pinned = current_seq();
  auto session = std::unique_ptr<Session>(
      new Session(this, id, std::move(label), pinned, slot));
  Session* handle = session.get();
  const std::string scope = "session." + handle->label_ + ".";
  MetricsRegistry& metrics = dbms_->metrics();
  handle->m_queries_ = metrics.GetCounter(scope + "queries");
  handle->m_cache_hits_ = metrics.GetCounter(scope + "cache_hits");
  handle->m_rows_ = metrics.GetCounter(scope + "rows");
  handle->m_pages_ = metrics.GetCounter(scope + "pages");
  handle->m_flushes_ = metrics.GetCounter(scope + "flushes");
  handle->m_query_ms_ = metrics.GetHistogram(scope + "query_ms");
  sessions_[id] = std::move(session);
  ++opened_;
  dbms_->flight().Record(causal::Mint(id), FlightEventKind::kSessionOpen,
                         handle->label_, static_cast<int64_t>(id),
                         static_cast<int64_t>(pinned));
  return handle;
}

Status SessionManager::Close(Session* session) {
  if (session == nullptr) return InvalidArgumentError("null session");
  uint64_t id = 0;
  uint64_t queries = 0;
  std::string label;
  {
    MutexLock lock(admission_mu_);
    auto it = sessions_.find(session->id());
    if (it == sessions_.end() || it->second.get() != session) {
      return NotFoundError("session is not open");
    }
    bool expected = false;
    if (!session->closing_.compare_exchange_strong(
            expected, true, std::memory_order_seq_cst)) {
      return FailedPreconditionError("session already closing");
    }
    // Drain: in-flight operations refuse new work now (OpGuard sees
    // closing_) and the last one out notifies this condvar.
    while (session->in_flight_.load(std::memory_order_seq_cst) != 0) {
      admission_cv_.Wait(admission_mu_);
    }
    id = session->id();
    label = session->label();
    queries = session->queries_.load(std::memory_order_relaxed);
    slot_used_[session->epoch_slot_] = false;
    // Retire, don't free: a racing reader holding this handle must get
    // FAILED_PRECONDITION (closing_ stays set), never a use-after-free.
    retired_sessions_.push_back(std::move(it->second));
    sessions_.erase(it);
    ++closed_;
    // Reclaim snapshots only this session could reach. Lock order
    // admission_mu_ -> registry/timeline mutexes matches the writer
    // path (BeginMutation holds neither across the other).
    const uint64_t min_pinned = MinPinnedSeqLocked();
    registry_.TrimRetired(min_pinned);
    timeline_.Trim(min_pinned);
    admission_cv_.NotifyAll();  // wake queued Open()s
  }
  dbms_->flight().Record(causal::Mint(id), FlightEventKind::kSessionClose,
                         label, static_cast<int64_t>(id),
                         static_cast<int64_t>(queries));
  return Status::OK();
}

void SessionManager::CloseAll() {
  while (true) {
    Session* next = nullptr;
    {
      MutexLock lock(admission_mu_);
      if (sessions_.empty()) return;
      next = sessions_.begin()->second.get();
    }
    // A session that closed itself concurrently returns NOT_FOUND here;
    // CloseAll only cares that the map drains.
    (void)Close(next);
  }
}

size_t SessionManager::open_sessions() const {
  MutexLock lock(admission_mu_);
  return sessions_.size();
}

SessionManager::Stats SessionManager::stats() const {
  MutexLock lock(admission_mu_);
  Stats s;
  s.opened = opened_;
  s.closed = closed_;
  s.rejected = rejected_;
  s.queue_timeouts = queue_timeouts_;
  s.mutations = mutations_.load(std::memory_order_relaxed);
  s.captures = captures_.load(std::memory_order_relaxed);
  return s;
}

uint64_t SessionManager::MinPinnedSeqLocked() const {
  uint64_t min_pinned = current_seq() + 1;
  for (const auto& [id, s] : sessions_) {
    if (s->pinned_seq() < min_pinned) min_pinned = s->pinned_seq();
  }
  return min_pinned;
}

Status SessionManager::BeginMutation(MutationScope::Kind kind,
                                     const std::string& view,
                                     ConcreteView* live) {
  bool have_sessions = false;
  {
    MutexLock lock(admission_mu_);
    while (mutation_in_flight_) admission_cv_.Wait(admission_mu_);
    mutation_in_flight_ = true;
    have_sessions = !sessions_.empty();
  }
  // No pre-image needed when there is nothing to mutate (kCreate) or
  // nobody pinned (opens wait out this in-flight mutation, so no session
  // can pin a pre-publish seq from here on).
  if (kind == MutationScope::Kind::kCreate || live == nullptr ||
      !have_sessions) {
    return Status::OK();
  }

  // Capture immutable pre-images of every column, then block the live
  // route and wait out readers still on it. Reads happen before any
  // routing change, so a capture failure aborts cleanly: readers never
  // saw a blocked route.
  const uint64_t upto = current_seq();
  const Schema& schema = live->schema();
  std::vector<std::pair<std::string, std::shared_ptr<ColumnSnapshot>>>
      captures;
  captures.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    const Attribute& attr = schema.attr(i);
    Result<std::vector<Value>> values = live->ReadColumn(attr.name);
    if (!values.ok()) {
      AbortMutation();
      return values.status();
    }
    auto snap = std::make_shared<ColumnSnapshot>();
    snap->values = std::make_shared<const std::vector<Value>>(
        std::move(*values));
    // Numeric projection for the query path; non-numeric columns keep a
    // null numeric vector and can only be ReadColumn'd.
    if (attr.type == DataType::kInt64 || attr.type == DataType::kDouble) {
      Result<std::vector<double>> numeric =
          live->ReadNumericColumn(attr.name);
      if (!numeric.ok()) {
        AbortMutation();
        return numeric.status();
      }
      snap->numeric = std::make_shared<const std::vector<double>>(
          std::move(*numeric));
    }
    captures.emplace_back(attr.name, std::move(snap));
  }
  captures_.fetch_add(captures.size(), std::memory_order_relaxed);
  registry_.BlockView(view, std::move(captures), upto);
  // Grace period: after this returns, no pinned reader is on the live
  // route — the caller may mutate the bytes in place. We hold no lock
  // here (admission_mu_ released above, registry mutex released inside
  // BlockView), so readers can always drain.
  epochs_.Synchronize();
  return Status::OK();
}

void SessionManager::EndMutation(const std::string& view, ConcreteView* live,
                                 bool dropped) {
  const uint64_t prev =
      commit_seq_.fetch_add(1, std::memory_order_seq_cst);
  const uint64_t seq = prev + 1;
  if (dropped) {
    registry_.PublishViewDropped(view, seq);
  } else if (live != nullptr) {
    registry_.PublishView(view, live, live->schema(), seq);
  }
  // Every publish closes the timeline's open windows for this view —
  // including capture-skipped ones: a stale open entry would claim
  // validity across the mutation and poison sessions opened after it.
  timeline_.CloseView(view, prev);
  mutations_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(admission_mu_);
  mutation_in_flight_ = false;
  admission_cv_.NotifyAll();
}

void SessionManager::AbortMutation() {
  MutexLock lock(admission_mu_);
  mutation_in_flight_ = false;
  admission_cv_.NotifyAll();
}

}  // namespace statdb::session

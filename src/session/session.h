#ifndef STATDB_SESSION_SESSION_H_
#define STATDB_SESSION_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/dbms.h"
#include "obs/metrics.h"
#include "session/epoch.h"
#include "session/snapshot.h"

namespace statdb::session {

class SessionManager;

/// Admission policy and capacity of the session layer.
struct SessionConfig {
  /// Concurrently open sessions; must be in [1, EpochManager::kSlots].
  size_t max_sessions = 8;
  enum class OverflowPolicy : uint8_t {
    kReject = 0,  // Open beyond capacity -> RESOURCE_EXHAUSTED
    kQueue = 1,   // Open waits up to queue_timeout_ms for a slot
  };
  OverflowPolicy policy = OverflowPolicy::kReject;
  int64_t queue_timeout_ms = 1000;
};

/// One analyst session, pinned at the commit seq current when it opened
/// (DESIGN.md §15). Reads resolve against that snapshot and never take
/// the write path's locks: the query path is epoch-enter, routing-table
/// lookup under a briefly-held SharedMutex, then either a retired
/// pre-image read (plain shared_ptr deref) or a live column read that
/// the epoch protocol keeps race-free against in-place mutation.
///
/// Sessions are opened and closed through SessionManager; Close()
/// invalidates the handle. All methods are safe to call from the
/// session's own thread while writers mutate concurrently; a Session
/// object itself is not meant to be shared across reader threads
/// (open one session per analyst thread — that is the point).
class Session {
 public:
  uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }
  /// The commit seq this session's reads resolve against.
  uint64_t pinned_seq() const { return pinned_seq_; }

  /// Snapshot-isolated query: same semantics as StatisticalDbms::Query
  /// but resolved at pinned_seq(), served from the session layer's
  /// versioned summary timeline when a cached window covers the pin.
  Result<QueryAnswer> Query(const std::string& view,
                            const std::string& function,
                            const std::string& attribute,
                            const FunctionParams& params = {});

  /// Snapshot-isolated column read (full decoded column at pinned_seq).
  Result<std::vector<Value>> ReadColumn(const std::string& view,
                                        const std::string& column);

  /// Column names of `view` as of pinned_seq().
  Result<std::vector<std::string>> Columns(const std::string& view);

  /// Closes this session (idempotent via the manager; the handle is
  /// invalid after a successful close). Concurrent in-flight queries on
  /// other threads drain first — Close blocks until they finish.
  Status Close();

  struct Stats {
    uint64_t queries = 0;
    uint64_t cache_hits = 0;
    uint64_t live_reads = 0;      // resolved to the live view
    uint64_t snapshot_reads = 0;  // resolved to a retired pre-image
    uint64_t rows = 0;            // rows materialized for this session
    uint64_t pages = 0;           // page equivalents of those rows
    /// Delta flushes this session triggered. Sessions are read-only
    /// (snapshot-isolated), so this is 0 today; the scope exists so the
    /// per-session/global attribution invariant covers the counter the
    /// day sessions gain a write path.
    uint64_t flushes = 0;
  };
  Stats stats() const;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

 private:
  friend class SessionManager;
  Session(SessionManager* mgr, uint64_t id, std::string label,
          uint64_t pinned_seq, int epoch_slot);

  /// Guards the routing resolution + data read + timeline insert of one
  /// operation; also the close/drain accounting.
  class OpGuard;

  SessionManager* mgr_;
  uint64_t id_;
  std::string label_;
  uint64_t pinned_seq_;
  int epoch_slot_;

  std::atomic<bool> closing_{false};
  std::atomic<uint64_t> in_flight_{0};

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> live_reads_{0};
  std::atomic<uint64_t> snapshot_reads_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> pages_{0};
  std::atomic<uint64_t> flushes_{0};

  /// Per-session metric scope (DESIGN.md §17): each bump site increments
  /// the session atomic, the per-label instrument and the manager's
  /// global "sessions.*" mirror in the same statement — that is the
  /// attribution invariant the stress test asserts (sum over sessions of
  /// "session.<label>.x" == "sessions.x", bit-exact).
  void BumpQueries();
  void BumpCacheHits();
  void BumpRows(uint64_t rows);
  void RecordQueryMs(double ms);

  // Resolved once at open (registration takes the registry mutex);
  // bumped lock-free afterwards.
  Counter* m_queries_ = nullptr;
  Counter* m_cache_hits_ = nullptr;
  Counter* m_rows_ = nullptr;
  Counter* m_pages_ = nullptr;
  Counter* m_flushes_ = nullptr;
  LatencyHistogram* m_query_ms_ = nullptr;
};

/// RAII write-side bracket of the capture -> block -> grace -> mutate ->
/// publish protocol. The Dbms mutation paths construct one around every
/// in-place change to a view (update, rollback, derived-column write,
/// reorganize, drop); with no SessionManager attached the scope is inert
/// and costs two branches.
///
/// Lifecycle:
///   MutationScope scope(dbms.sessions(), Kind::kMutate, name, live);
///   if (!scope.ok()) return scope.status();   // capture failed: abort
///   ... mutate the live view in place ...
///   scope.Publish(live);                      // or let ~MutationScope
///
/// Begin serializes writers (one mutation in flight at a time), captures
/// immutable pre-images of every column, blocks the live route, and runs
/// an epoch grace period so no pinned reader is still on the live bytes.
/// Publish bumps the commit seq, re-opens the live route and closes the
/// summary timeline's open windows. The destructor auto-publishes with
/// the begin-time live pointer (kDrop auto-publishes the drop), so early
/// returns in a mutation body still restore reader routing.
///
/// Self-deadlock hazard: scopes do not nest (writer serialization is a
/// flag, not a recursive lock). A mutation that calls another mutating
/// entry point must Publish first — see AddDerivedColumn.
class MutationScope {
 public:
  enum class Kind : uint8_t {
    kMutate = 0,  // in-place change to an existing view
    kCreate = 1,  // new view materialization (no pre-image to capture)
    kDrop = 2,    // view removal
  };

  /// `mgr` may be nullptr (sessions disabled): the scope is inert.
  /// `live` is the view about to be mutated (nullptr for kCreate).
  MutationScope(SessionManager* mgr, Kind kind, std::string view,
                ConcreteView* live);
  ~MutationScope();

  MutationScope(const MutationScope&) = delete;
  MutationScope& operator=(const MutationScope&) = delete;

  /// False when the pre-image capture failed; the caller must abort the
  /// mutation (reader routing is untouched in that case).
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Publishes the post-mutation state. `live` may differ from the
  /// begin-time pointer (ReorganizeView swaps the ConcreteView).
  void Publish(ConcreteView* live);
  /// Publishes a drop: later pins see NOT_FOUND, earlier pins keep
  /// reading their captured pre-images.
  void PublishDropped();

 private:
  SessionManager* mgr_;
  Kind kind_;
  std::string view_;
  ConcreteView* begin_live_;
  Status status_;
  bool armed_ = false;      // a Begin actually ran and must be ended
  bool published_ = false;
};

/// Owner of the session layer: admission control, the MVCC routing
/// tables, the commit-seq clock and the epoch domain (DESIGN.md §15).
/// Created via StatisticalDbms::EnableSessions; one per Dbms.
///
/// Lock ordering (extends the §13 capability map): admission_mu_ is a
/// leaf taken by Open/Close and the writer-serialization bracket; the
/// SnapshotRegistry / SummaryTimeline SharedMutexes are leaves of the
/// read path. No session-layer lock is ever held across view I/O, the
/// epoch grace period, or a Dbms call — so no lock the write path holds
/// across its mutation is ever awaited by a pinned reader.
class SessionManager {
 public:
  SessionManager(StatisticalDbms* dbms, SessionConfig config);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session pinned at the current commit seq. Applies the
  /// admission policy when the session count is at max_sessions:
  /// RESOURCE_EXHAUSTED (kReject) or a bounded wait then UNAVAILABLE
  /// (kQueue). The returned handle stays owned by the manager; it is
  /// valid until Close.
  Result<Session*> Open(std::string label);

  /// Closes `session` and reclaims every snapshot only it could reach.
  /// Blocks until the session's in-flight operations drain. The handle
  /// is retired, not freed (it lives until the manager is destroyed), so
  /// a racing reader that uses it after close gets FAILED_PRECONDITION
  /// instead of undefined behavior.
  Status Close(Session* session);

  /// Closes every open session (shutdown path).
  void CloseAll();

  /// Registers an already-materialized view with the routing table
  /// (EnableSessions bootstrap; CreateView under sessions publishes
  /// through MutationScope instead).
  void BootstrapView(const std::string& view, ConcreteView* live);

  size_t open_sessions() const;
  uint64_t current_seq() const {
    return commit_seq_.load(std::memory_order_seq_cst);
  }

  struct Stats {
    uint64_t opened = 0;
    uint64_t closed = 0;
    uint64_t rejected = 0;        // kReject overflow
    uint64_t queue_timeouts = 0;  // kQueue overflow that timed out
    uint64_t mutations = 0;       // published mutation scopes
    uint64_t captures = 0;        // column pre-images captured
  };
  Stats stats() const;

  const SessionConfig& config() const { return config_; }

  /// Observability / test hooks into the MVCC state.
  size_t RetiredSnapshots() const { return registry_.RetiredCount(); }
  size_t TimelineEntries() const { return timeline_.EntryCount(); }

 private:
  friend class Session;
  friend class MutationScope;

  /// Writer-side bracket (called by MutationScope). Begin serializes
  /// against other writers and session opens, captures pre-images of
  /// every column of `view` (skipped when no session is open — opens
  /// wait out in-flight mutations, so nobody can pin mid-capture-skip),
  /// blocks the live route and synchronizes the epoch domain.
  Status BeginMutation(MutationScope::Kind kind, const std::string& view,
                       ConcreteView* live);
  /// Publish step: bumps the commit seq, re-opens (or drops) the route,
  /// closes the timeline's open windows, releases writer serialization.
  void EndMutation(const std::string& view, ConcreteView* live,
                   bool dropped);
  /// Begin failed after acquiring writer serialization: release it
  /// without publishing (reader routing untouched).
  void AbortMutation();

  /// Smallest pinned seq among open sessions, or current_seq() + 1 when
  /// none (then every retired snapshot is unreachable).
  uint64_t MinPinnedSeqLocked() const STATDB_REQUIRES(admission_mu_);

  StatisticalDbms* dbms_;
  SessionConfig config_;

  EpochManager epochs_;
  SnapshotRegistry registry_;
  SummaryTimeline timeline_;

  /// The MVCC clock. Starts at 1; every published mutation advances it.
  /// Monotone across Rollback — which reuses *view version* numbers and
  /// is exactly why pinned lookups must never key on view versions
  /// (SummaryDatabase::ClampVersions rewrites that head cache).
  std::atomic<uint64_t> commit_seq_{1};

  mutable Mutex admission_mu_;
  CondVar admission_cv_;
  bool mutation_in_flight_ STATDB_GUARDED_BY(admission_mu_) = false;
  uint64_t next_id_ STATDB_GUARDED_BY(admission_mu_) = 1;
  std::vector<bool> slot_used_ STATDB_GUARDED_BY(admission_mu_);
  std::map<uint64_t, std::unique_ptr<Session>> sessions_
      STATDB_GUARDED_BY(admission_mu_);
  /// Closed sessions, kept alive so stale handles fail closed (their
  /// closing_ flag is permanently set; they never re-enter the epoch
  /// domain). Freed when the manager is destroyed.
  std::vector<std::unique_ptr<Session>> retired_sessions_
      STATDB_GUARDED_BY(admission_mu_);

  /// Global mirrors of the per-session scopes ("sessions.*"), resolved
  /// once at construction and bumped at the exact sites that bump the
  /// per-session instruments — never independently, or the attribution
  /// invariant breaks.
  Counter* g_queries_ = nullptr;
  Counter* g_cache_hits_ = nullptr;
  Counter* g_rows_ = nullptr;
  Counter* g_pages_ = nullptr;
  Counter* g_flushes_ = nullptr;
  LatencyHistogram* g_query_ms_ = nullptr;

  uint64_t opened_ STATDB_GUARDED_BY(admission_mu_) = 0;
  uint64_t closed_ STATDB_GUARDED_BY(admission_mu_) = 0;
  uint64_t rejected_ STATDB_GUARDED_BY(admission_mu_) = 0;
  uint64_t queue_timeouts_ STATDB_GUARDED_BY(admission_mu_) = 0;
  std::atomic<uint64_t> mutations_{0};
  std::atomic<uint64_t> captures_{0};
};

}  // namespace statdb::session

#endif  // STATDB_SESSION_SESSION_H_

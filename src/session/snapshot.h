#ifndef STATDB_SESSION_SNAPSHOT_H_
#define STATDB_SESSION_SNAPSHOT_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "relational/schema.h"
#include "relational/value.h"
#include "summary/summary_result.h"

namespace statdb {
class ConcreteView;
}

namespace statdb::session {

/// Sentinel for "still valid" windows.
inline constexpr uint64_t kOpenSeq = std::numeric_limits<uint64_t>::max();

/// Immutable pre-image of one view column, captured by a writer before it
/// mutates the live bytes. Shared ownership: every pinned session that
/// resolves to it holds a ref, so reclamation is automatic when the last
/// pinned reader closes (the epoch grace period additionally guarantees
/// no reader is mid-resolution while a writer retires routing state).
struct ColumnSnapshot {
  /// Commit-seq window [from_seq, to_seq] this pre-image is valid for.
  uint64_t from_seq = 0;
  uint64_t to_seq = 0;
  /// Full decoded column (ReadColumn order).
  std::shared_ptr<const std::vector<Value>> values;
  /// Non-null numeric cells in row order (ReadNumericColumn parity);
  /// nullptr for non-numeric columns.
  std::shared_ptr<const std::vector<double>> numeric;
};

/// Where a pinned read of (view, column, seq) should be served from.
struct ColumnRoute {
  enum class Source : uint8_t {
    kLive = 0,      // read the live ConcreteView (inside the epoch)
    kSnapshot = 1,  // read the returned ColumnSnapshot
  };
  Source source = Source::kLive;
  ConcreteView* live = nullptr;           // valid iff kLive
  std::shared_ptr<const ColumnSnapshot> snapshot;  // valid iff kSnapshot
  Attribute attr;                          // schema entry at the pinned seq
  /// Commit-seq window over which the resolved column content is valid:
  /// [window_from, window_to] with kOpenSeq meaning "still live". The
  /// SummaryTimeline uses this as the cache-entry validity window.
  uint64_t window_from = 0;
  uint64_t window_to = kOpenSeq;
};

/// MVCC routing table of the session layer (DESIGN.md §15).
///
/// One entry per view; per column: the seq from which the live bytes are
/// valid, plus a retired chain of captured pre-images. Mutations run the
/// capture → block → grace → mutate → publish protocol through
/// SessionManager::MutationScope; pinned readers resolve against this
/// table (inside an epoch critical section) and never take any lock the
/// write path holds across its mutation — the registry's SharedMutex is
/// held only for map lookups, never across I/O, capture, or the grace
/// period.
class SnapshotRegistry {
 public:
  /// Registers a view (creation or EnableSessions bootstrap): every
  /// column of `schema` becomes live from `seq`.
  void RegisterView(const std::string& view, ConcreteView* live,
                    const Schema& schema, uint64_t seq);

  /// Installs captured pre-images for every column of `view` and blocks
  /// the live route (readers resolving from now on are served from the
  /// captures; `Synchronize` then drains readers already on the live
  /// route). `upto_seq` is the last seq the captures are valid for; the
  /// registry stamps each capture's window as [column live_from,
  /// upto_seq] so retired windows stay contiguous.
  void BlockView(
      const std::string& view,
      std::vector<std::pair<std::string, std::shared_ptr<ColumnSnapshot>>>
          captures,
      uint64_t upto_seq);

  /// Re-opens the live route from `seq` with (possibly new) live pointer
  /// and schema — the publish step. Columns new in `schema` get routes
  /// starting at `seq`; columns no longer in `schema` keep only their
  /// retired chain.
  void PublishView(const std::string& view, ConcreteView* live,
                   const Schema& schema, uint64_t seq);

  /// Marks the view dropped as of `seq`: sessions pinned before `seq`
  /// keep reading their captures; later pins get NOT_FOUND.
  void PublishViewDropped(const std::string& view, uint64_t seq);

  /// Resolves (view, column) at pinned seq `seq`. NOT_FOUND when the
  /// view/column does not exist at that seq; the caller must be inside
  /// an epoch critical section (kLive routes are only safe under one).
  Result<ColumnRoute> Resolve(const std::string& view,
                              const std::string& column,
                              uint64_t seq) const;

  /// Column names of `view` as of `seq` (schema at the pinned seq).
  Result<std::vector<std::string>> Columns(const std::string& view,
                                           uint64_t seq) const;

  /// Drops retired snapshots no session can reach any more: every
  /// snapshot whose to_seq < `min_pinned_seq`. Sessions holding refs keep
  /// theirs alive via shared_ptr; this only trims the registry's chains.
  void TrimRetired(uint64_t min_pinned_seq);

  /// Retired snapshots currently held (observability / tests).
  size_t RetiredCount() const;

 private:
  struct ColumnEntry {
    Attribute attr;
    /// Seq from which the live bytes serve this column; kOpenSeq while
    /// the view is blocked mid-mutation (no live route).
    uint64_t live_from = 0;
    bool blocked = false;
    /// Newest-last chain of captured pre-images.
    std::vector<std::shared_ptr<const ColumnSnapshot>> retired;
  };
  struct ViewEntry {
    ConcreteView* live = nullptr;
    uint64_t created_seq = 0;
    uint64_t dropped_seq = kOpenSeq;
    std::map<std::string, ColumnEntry> columns;
    /// Column order chain: [from_seq, names] so Columns(seq) reproduces
    /// the schema order at any pinned seq.
    std::vector<std::pair<uint64_t, std::vector<std::string>>> schema_chain;
  };

  mutable SharedMutex mu_;
  std::map<std::string, ViewEntry> views_;
};

/// Versioned overlay of the Summary Database for pinned readers
/// (satellite fix: pinned-version lookups resolve against this timeline,
/// never against the head cache that Rollback's ClampVersions rewrites).
/// Keys are commit seqs — monotone even across rollback, which reuses
/// view-version numbers and is exactly why the head cache needs clamping.
///
/// Entries carry the validity window of the column content they were
/// computed from, so sessions pinned at different seqs share results
/// whenever their pinned windows overlap.
class SummaryTimeline {
 public:
  /// Result of `encoded_key` on `view` computed from column content valid
  /// over [from_seq, to_seq] (kOpenSeq = still live at insert time).
  void Insert(const std::string& view, const std::string& encoded_key,
              uint64_t from_seq, uint64_t to_seq, const SummaryResult& r);

  /// Cached result valid at pinned `seq`, or NOT_FOUND.
  Result<SummaryResult> Lookup(const std::string& view,
                               const std::string& encoded_key,
                               uint64_t seq) const;

  /// Publish hook: every open entry ([from, kOpenSeq)) of `view` closes
  /// at `last_valid_seq` — the mutation that is publishing may have
  /// changed any column, so open entries must stop covering later seqs.
  /// Runs on EVERY publish, including capture-skipped ones (a stale open
  /// entry would poison sessions opened after the mutation).
  void CloseView(const std::string& view, uint64_t last_valid_seq);

  /// Entries whose windows end before `min_pinned_seq` are unreachable;
  /// drop them.
  void Trim(uint64_t min_pinned_seq);

  size_t EntryCount() const;

 private:
  struct Entry {
    uint64_t from_seq;
    uint64_t to_seq;  // kOpenSeq = open
    SummaryResult result;
  };
  mutable SharedMutex mu_;
  /// view -> encoded key -> entries (newest last).
  std::map<std::string, std::map<std::string, std::vector<Entry>>> entries_;
};

}  // namespace statdb::session

#endif  // STATDB_SESSION_SNAPSHOT_H_

#ifndef STATDB_SESSION_EPOCH_H_
#define STATDB_SESSION_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace statdb::session {

/// Epoch-based reclamation for the session layer (DESIGN.md §15).
///
/// Readers are wait-free: entering a critical section is one seq_cst
/// store into the session's own cache-line-private slot, exiting is
/// another. Writers pay the cost: Synchronize() starts a new global
/// epoch and spins until every slot is either quiescent (0) or has
/// re-entered at the new epoch — at which point every reader that could
/// have observed pre-synchronize routing state has finished, and the
/// writer may mutate bytes in place or free retired state.
///
/// The global epoch starts at 2 and advances by 2 so slot value 0 can
/// unambiguously mean "not in a critical section".
///
/// Soundness sketch (all operations seq_cst, so one total order):
///   - A reader stores its slot BEFORE resolving any routing state
///     (Session enters the epoch first, then reads the SnapshotRegistry).
///   - A writer blocks the routing state BEFORE calling Synchronize().
///   - Any reader whose Enter precedes the writer's epoch advance may
///     have resolved the old ("live") route; Synchronize waits it out.
///   - Any reader whose Enter follows the advance resolves routing after
///     the block and is directed at a retired snapshot, never at the
///     bytes the writer is about to change.
/// The spin also establishes happens-before (the writer's acquire-load of
/// the reader's quiescent store), so the reader's plain byte reads are
/// ordered before the writer's plain byte writes — the protocol is clean
/// under ThreadSanitizer, not just "benign".
class EpochManager {
 public:
  /// Upper bound on concurrently open sessions (one slot per session).
  static constexpr int kSlots = 64;

  /// Enters a read-side critical section on `slot`. Must precede every
  /// routing-state read of the critical section.
  void Enter(int slot) {
    slots_[slot].value.store(global_.load(std::memory_order_seq_cst),
                             std::memory_order_seq_cst);
  }

  /// Leaves the read-side critical section on `slot`.
  void Exit(int slot) { slots_[slot].value.store(0, std::memory_order_seq_cst); }

  /// Writer-side grace period: returns once every reader that entered
  /// before the call has exited (or re-entered at the new epoch, which
  /// means it resolved routing after the caller blocked it). The caller
  /// must NOT hold any lock a reader could be waiting on, or the spin
  /// can livelock — see the lock-ordering rules in DESIGN.md §15.
  void Synchronize() {
    uint64_t next = global_.fetch_add(2, std::memory_order_seq_cst) + 2;
    for (int i = 0; i < kSlots; ++i) {
      while (true) {
        uint64_t v = slots_[i].value.load(std::memory_order_seq_cst);
        if (v == 0 || v >= next) break;
        std::this_thread::yield();
      }
    }
  }

  uint64_t global() const {
    return global_.load(std::memory_order_seq_cst);
  }

 private:
  // One cache line per slot: a reader's Enter/Exit stores must not
  // false-share with its neighbours (or with the global counter).
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };

  std::atomic<uint64_t> global_{2};
  Slot slots_[kSlots];
};

/// RAII read-side critical section.
class EpochGuard {
 public:
  EpochGuard(EpochManager* mgr, int slot) : mgr_(mgr), slot_(slot) {
    mgr_->Enter(slot_);
  }
  ~EpochGuard() { mgr_->Exit(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* mgr_;
  int slot_;
};

}  // namespace statdb::session

#endif  // STATDB_SESSION_EPOCH_H_

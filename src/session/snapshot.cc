#include "session/snapshot.h"

#include <algorithm>

#include "core/view.h"

namespace statdb::session {

void SnapshotRegistry::RegisterView(const std::string& view,
                                    ConcreteView* live, const Schema& schema,
                                    uint64_t seq) {
  WriterMutexLock lock(mu_);
  ViewEntry& e = views_[view];
  e.live = live;
  e.created_seq = seq;
  e.dropped_seq = kOpenSeq;
  e.columns.clear();
  e.schema_chain.clear();
  std::vector<std::string> names;
  names.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    const Attribute& attr = schema.attr(i);
    ColumnEntry& c = e.columns[attr.name];
    c.attr = attr;
    c.live_from = seq;
    c.blocked = false;
    names.push_back(attr.name);
  }
  e.schema_chain.emplace_back(seq, std::move(names));
}

void SnapshotRegistry::BlockView(
    const std::string& view,
    std::vector<std::pair<std::string, std::shared_ptr<ColumnSnapshot>>>
        captures,
    uint64_t upto_seq) {
  WriterMutexLock lock(mu_);
  auto it = views_.find(view);
  if (it == views_.end()) return;
  ViewEntry& e = it->second;
  for (auto& [name, snap] : captures) {
    auto cit = e.columns.find(name);
    if (cit == e.columns.end()) continue;
    // Stamp the window here, where live_from is known: the capture
    // covers every seq the live bytes covered, through upto_seq.
    snap->from_seq = cit->second.live_from;
    snap->to_seq = upto_seq;
    cit->second.retired.push_back(std::move(snap));
  }
  for (auto& [name, c] : e.columns) c.blocked = true;
}

void SnapshotRegistry::PublishView(const std::string& view,
                                   ConcreteView* live, const Schema& schema,
                                   uint64_t seq) {
  WriterMutexLock lock(mu_);
  ViewEntry& e = views_[view];
  if (e.schema_chain.empty()) {
    // First sighting (CreateView under sessions): behaves like
    // registration at `seq`.
    e.created_seq = seq;
    e.dropped_seq = kOpenSeq;
  }
  e.live = live;
  std::vector<std::string> names;
  names.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    const Attribute& attr = schema.attr(i);
    ColumnEntry& c = e.columns[attr.name];
    c.attr = attr;
    c.live_from = seq;
    c.blocked = false;
    names.push_back(attr.name);
  }
  // Columns absent from the new schema keep their retired chains but get
  // no live route: mark them blocked with no future live window.
  for (auto& [name, c] : e.columns) {
    if (!schema.Contains(name)) {
      c.blocked = true;
      c.live_from = kOpenSeq;
    }
  }
  if (e.schema_chain.empty() || e.schema_chain.back().second != names) {
    e.schema_chain.emplace_back(seq, std::move(names));
  } else {
    // Same column set: just extend the current schema window.
  }
}

void SnapshotRegistry::PublishViewDropped(const std::string& view,
                                          uint64_t seq) {
  WriterMutexLock lock(mu_);
  auto it = views_.find(view);
  if (it == views_.end()) return;
  ViewEntry& e = it->second;
  e.dropped_seq = seq;
  e.live = nullptr;
  for (auto& [name, c] : e.columns) {
    c.blocked = true;
    c.live_from = kOpenSeq;
  }
}

Result<ColumnRoute> SnapshotRegistry::Resolve(const std::string& view,
                                              const std::string& column,
                                              uint64_t seq) const {
  ReaderMutexLock lock(mu_);
  auto it = views_.find(view);
  if (it == views_.end()) {
    return NotFoundError("view not registered with session layer: " + view);
  }
  const ViewEntry& e = it->second;
  if (seq < e.created_seq) {
    return NotFoundError("view " + view + " does not exist at this snapshot");
  }
  if (seq >= e.dropped_seq) {
    return NotFoundError("view " + view + " was dropped before this snapshot");
  }
  auto cit = e.columns.find(column);
  if (cit == e.columns.end()) {
    return NotFoundError("column not known to snapshot layer: " + column);
  }
  const ColumnEntry& c = cit->second;
  // Newest-first over the retired chain: the windows are disjoint and
  // ordered, so the first cover wins.
  for (auto rit = c.retired.rbegin(); rit != c.retired.rend(); ++rit) {
    const ColumnSnapshot& snap = **rit;
    if (snap.from_seq <= seq && seq <= snap.to_seq) {
      ColumnRoute route;
      route.source = ColumnRoute::Source::kSnapshot;
      route.snapshot = *rit;
      route.attr = c.attr;
      route.window_from = snap.from_seq;
      route.window_to = snap.to_seq;
      return route;
    }
  }
  if (!c.blocked && c.live_from != kOpenSeq && c.live_from <= seq) {
    ColumnRoute route;
    route.source = ColumnRoute::Source::kLive;
    route.live = e.live;
    route.attr = c.attr;
    route.window_from = c.live_from;
    route.window_to = kOpenSeq;
    return route;
  }
  if (seq < c.live_from || c.live_from == kOpenSeq) {
    return NotFoundError("column " + column +
                         " does not exist at this snapshot");
  }
  // Blocked with no retired cover for a pinned seq <= capture horizon
  // cannot happen: BlockView installs captures covering [live_from,
  // now] before any session may pin past them (opens wait out in-flight
  // mutations).
  return InternalError("snapshot routing hole for " + view + "." + column);
}

Result<std::vector<std::string>> SnapshotRegistry::Columns(
    const std::string& view, uint64_t seq) const {
  ReaderMutexLock lock(mu_);
  auto it = views_.find(view);
  if (it == views_.end()) {
    return NotFoundError("view not registered with session layer: " + view);
  }
  const ViewEntry& e = it->second;
  if (seq < e.created_seq || seq >= e.dropped_seq) {
    return NotFoundError("view " + view + " does not exist at this snapshot");
  }
  const std::vector<std::string>* best = nullptr;
  for (const auto& [from, names] : e.schema_chain) {
    if (from <= seq) best = &names;
  }
  if (best == nullptr) {
    return NotFoundError("no schema for " + view + " at this snapshot");
  }
  return *best;
}

void SnapshotRegistry::TrimRetired(uint64_t min_pinned_seq) {
  WriterMutexLock lock(mu_);
  for (auto it = views_.begin(); it != views_.end();) {
    ViewEntry& e = it->second;
    for (auto& [name, c] : e.columns) {
      auto& chain = c.retired;
      chain.erase(std::remove_if(chain.begin(), chain.end(),
                                 [min_pinned_seq](const auto& snap) {
                                   return snap->to_seq < min_pinned_seq;
                                 }),
                  chain.end());
    }
    // A dropped view with no reachable snapshots can go entirely.
    bool dropped_unreachable = e.dropped_seq != kOpenSeq &&
                               e.dropped_seq <= min_pinned_seq;
    if (dropped_unreachable) {
      it = views_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t SnapshotRegistry::RetiredCount() const {
  ReaderMutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [name, e] : views_) {
    for (const auto& [col, c] : e.columns) n += c.retired.size();
  }
  return n;
}

void SummaryTimeline::Insert(const std::string& view,
                             const std::string& encoded_key,
                             uint64_t from_seq, uint64_t to_seq,
                             const SummaryResult& r) {
  WriterMutexLock lock(mu_);
  auto& chain = entries_[view][encoded_key];
  // Another session may have inserted the same window concurrently;
  // identical windows hold identical results (bit-exact compute), so
  // keeping the first is enough.
  for (const Entry& e : chain) {
    if (e.from_seq == from_seq) return;
  }
  chain.push_back(Entry{from_seq, to_seq, r});
}

Result<SummaryResult> SummaryTimeline::Lookup(const std::string& view,
                                              const std::string& encoded_key,
                                              uint64_t seq) const {
  ReaderMutexLock lock(mu_);
  auto vit = entries_.find(view);
  if (vit == entries_.end()) return NotFoundError("no timeline for view");
  auto kit = vit->second.find(encoded_key);
  if (kit == vit->second.end()) return NotFoundError("no timeline entry");
  for (auto it = kit->second.rbegin(); it != kit->second.rend(); ++it) {
    if (it->from_seq <= seq && seq <= it->to_seq) return it->result;
  }
  return NotFoundError("no timeline entry covers this snapshot");
}

void SummaryTimeline::CloseView(const std::string& view,
                                uint64_t last_valid_seq) {
  WriterMutexLock lock(mu_);
  auto vit = entries_.find(view);
  if (vit == entries_.end()) return;
  for (auto& [key, chain] : vit->second) {
    for (Entry& e : chain) {
      if (e.to_seq == kOpenSeq) e.to_seq = last_valid_seq;
    }
  }
}

void SummaryTimeline::Trim(uint64_t min_pinned_seq) {
  WriterMutexLock lock(mu_);
  for (auto& [view, keys] : entries_) {
    for (auto& [key, chain] : keys) {
      chain.erase(std::remove_if(chain.begin(), chain.end(),
                                 [min_pinned_seq](const Entry& e) {
                                   return e.to_seq != kOpenSeq &&
                                          e.to_seq < min_pinned_seq;
                                 }),
                  chain.end());
    }
  }
}

size_t SummaryTimeline::EntryCount() const {
  ReaderMutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [view, keys] : entries_) {
    for (const auto& [key, chain] : keys) n += chain.size();
  }
  return n;
}

}  // namespace statdb::session

#include "causal/slow_query_log.h"

#include <fstream>
#include <utility>

#include "obs/json.h"

namespace statdb {
namespace causal {

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlowQueryLog::Capture(const QueryTrace& trace, double wall_ms,
                           const FlightRecorder* flight) {
  Entry entry;
  entry.trace = trace;
  entry.wall_ms = wall_ms;
  if (flight != nullptr && trace.trace_id() != 0) {
    for (const FlightEvent& ev : flight->SnapshotEvents()) {
      if (ev.trace == trace.trace_id()) entry.events.push_back(ev);
    }
  }
  captured_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  if (entries_.size() >= capacity_) {
    entries_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  entries_.push_back(std::move(entry));
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<Entry>(entries_.begin(), entries_.end());
}

size_t SlowQueryLog::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::string SlowQueryLog::DumpJson(const std::string& reason) const {
  std::vector<Entry> entries = Snapshot();
  std::vector<std::string> rows;
  rows.reserve(entries.size());
  for (const Entry& entry : entries) {
    std::vector<std::string> events;
    events.reserve(entry.events.size());
    for (const FlightEvent& ev : entry.events) {
      events.push_back(obs::JsonObject()
                           .Int("seq", ev.seq)
                           .Num("t_ms", ev.t_ms)
                           .Str("kind", FlightEventKindName(ev.kind))
                           .Str("label", ev.label)
                           .Raw("a", std::to_string(ev.a))
                           .Raw("b", std::to_string(ev.b))
                           .Num("x", ev.x)
                           .Int("trace", ev.trace)
                           .Build());
    }
    rows.push_back(obs::JsonObject()
                       .Int("trace_id", entry.trace.trace_id())
                       .Num("wall_ms", entry.wall_ms)
                       .Str("outcome",
                            TraceOutcomeName(entry.trace.outcome()))
                       .Raw("trace", entry.trace.ToJson())
                       .Raw("flight_events", obs::JsonArray(events))
                       .Build());
  }
  obs::JsonObject log;
  log.Str("reason", reason)
      .Num("threshold_ms", threshold_ms())
      .Int("capacity", capacity_)
      .Int("captured", captured())
      .Int("dropped", dropped())
      .Raw("entries", obs::JsonArray(rows));
  return obs::JsonObject().Raw("slow_query_log", log.Build()).Build();
}

void SlowQueryLog::set_auto_dump_path(std::string path) {
  MutexLock lock(auto_dump_mu_);
  auto_dump_path_ = std::move(path);
  auto_dump_armed_.store(!auto_dump_path_.empty(),
                         std::memory_order_relaxed);
}

std::string SlowQueryLog::auto_dump_path() const {
  MutexLock lock(auto_dump_mu_);
  return auto_dump_path_;
}

bool SlowQueryLog::AutoDumpOnce(const std::string& reason) {
  if (!auto_dump_armed_.load(std::memory_order_relaxed)) return false;
  bool expected = false;
  if (!auto_dump_fired_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return false;  // somebody else already shipped the incident log
  }
  std::string path = auto_dump_path();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << DumpJson(reason) << "\n";
  auto_dumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SlowQueryLog::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  auto_dump_fired_.store(false, std::memory_order_relaxed);
}

}  // namespace causal
}  // namespace statdb

#include "causal/slo.h"

#include "obs/json.h"

namespace statdb {
namespace causal {

void SloTracker::SetTarget(const std::string& query_class,
                           const SloTarget& target) {
  ClassState* state = GetOrCreate(query_class);
  WriterMutexLock lock(mu_);
  state->target = target;
}

SloTracker::ClassState* SloTracker::GetOrCreate(
    const std::string& query_class) {
  {
    ReaderMutexLock lock(mu_);
    auto it = classes_.find(query_class);
    if (it != classes_.end()) return it->second.get();
  }
  WriterMutexLock lock(mu_);
  std::unique_ptr<ClassState>& slot = classes_[query_class];
  if (slot == nullptr) {
    slot = std::make_unique<ClassState>();
    slot->target = DefaultTarget();
    slot->ms = registry_->GetHistogram("slo." + query_class + ".ms");
  }
  return slot.get();
}

void SloTracker::Record(const std::string& query_class, double ms,
                        bool is_error) {
  ClassState* state = GetOrCreate(query_class);
  // The target is read without the lock: retargeting mid-run may miss a
  // racing sample on either side of the change, which a latency SLO can
  // tolerate (counters themselves are atomics and never torn).
  const SloTarget target = [&] {
    ReaderMutexLock lock(mu_);
    return state->target;
  }();
  state->total.Inc();
  state->ms->Record(ms);
  if (is_error) {
    state->errors.Inc();
    return;
  }
  if (ms > target.p50_ms) state->over_p50.Inc();
  if (ms > target.p95_ms) state->over_p95.Inc();
  if (ms > target.p99_ms) state->over_p99.Inc();
}

namespace {

SloClassSnapshot MakeSnapshot(const std::string& name,
                              const SloTarget& target, uint64_t total,
                              uint64_t over_p50, uint64_t over_p95,
                              uint64_t over_p99, uint64_t errors,
                              const LatencyHistogram* ms) {
  SloClassSnapshot s;
  s.query_class = name;
  s.target = target;
  s.total = total;
  s.over_p50 = over_p50;
  s.over_p95 = over_p95;
  s.over_p99 = over_p99;
  s.errors = errors;
  if (ms != nullptr) {
    s.observed_p50_ms = ms->QuantileUpperBoundMs(0.50);
    s.observed_p95_ms = ms->QuantileUpperBoundMs(0.95);
    s.observed_p99_ms = ms->QuantileUpperBoundMs(0.99);
  }
  const double budget = target.error_budget * double(total);
  const double burned = double(over_p99 + errors);
  s.budget_burn = budget > 0 ? burned / budget : (burned > 0 ? 1.0 : 0.0);
  return s;
}

}  // namespace

SloClassSnapshot SloTracker::Snapshot(const std::string& query_class) const {
  ReaderMutexLock lock(mu_);
  auto it = classes_.find(query_class);
  if (it == classes_.end()) {
    SloClassSnapshot empty;
    empty.query_class = query_class;
    return empty;
  }
  const ClassState& c = *it->second;
  return MakeSnapshot(query_class, c.target, c.total.Get(), c.over_p50.Get(),
                      c.over_p95.Get(), c.over_p99.Get(), c.errors.Get(),
                      c.ms);
}

std::vector<SloClassSnapshot> SloTracker::SnapshotAll() const {
  ReaderMutexLock lock(mu_);
  std::vector<SloClassSnapshot> out;
  out.reserve(classes_.size());
  for (const auto& [name, c] : classes_) {
    out.push_back(MakeSnapshot(name, c->target, c->total.Get(),
                               c->over_p50.Get(), c->over_p95.Get(),
                               c->over_p99.Get(), c->errors.Get(), c->ms));
  }
  return out;
}

std::string SloTracker::DumpJson() const {
  std::vector<std::string> rows;
  for (const SloClassSnapshot& s : SnapshotAll()) {
    obs::JsonObject targets;
    targets.Num("p50_ms", s.target.p50_ms)
        .Num("p95_ms", s.target.p95_ms)
        .Num("p99_ms", s.target.p99_ms);
    obs::JsonObject observed;
    observed.Num("p50_ms", s.observed_p50_ms)
        .Num("p95_ms", s.observed_p95_ms)
        .Num("p99_ms", s.observed_p99_ms);
    obs::JsonObject breaches;
    breaches.Int("over_p50", s.over_p50)
        .Int("over_p95", s.over_p95)
        .Int("over_p99", s.over_p99);
    obs::JsonObject budget;
    budget.Num("budget_pct", s.target.error_budget * 100.0)
        .Num("burn", s.budget_burn)
        .Int("errors", s.errors);
    rows.push_back(obs::JsonObject()
                       .Str("class", s.query_class)
                       .Int("total", s.total)
                       .Raw("targets", targets.Build())
                       .Raw("observed", observed.Build())
                       .Raw("breaches", breaches.Build())
                       .Raw("error_budget", budget.Build())
                       .Build());
  }
  obs::JsonObject slo;
  slo.Raw("classes", obs::JsonArray(rows));
  return obs::JsonObject().Raw("slo", slo.Build()).Build();
}

}  // namespace causal
}  // namespace statdb

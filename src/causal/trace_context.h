#ifndef STATDB_CAUSAL_TRACE_CONTEXT_H_
#define STATDB_CAUSAL_TRACE_CONTEXT_H_

#include <atomic>
#include <cstdint>

namespace statdb {
namespace causal {

/// statdb::causal — end-to-end causal tracing (DESIGN.md §17).
///
/// A TraceContext identifies one top-level operation: every public entry
/// point (Query*/Update/Rollback/Recover, session ops) mints one, and it
/// rides down through the subsystems the operation touches. The trace_id
/// is the join key across the four telemetry streams — QueryTrace spans,
/// FlightRecorder events, delta-flush records and WAL commits — so one
/// id reassembles everything the system did on an operation's behalf.
///
/// Propagation has two legs:
///   explicit  core/delta/session call sites pass the context (or its
///             trace_id) to the flight recorder / trace directly — lint
///             rule R8 enforces that no Record() in those dirs is bare;
///   ambient   ScopedTraceContext installs the context in a thread_local
///             slot, so layers below the signature boundary (BufferPool
///             retries, device faults, WAL appends) stamp the minting
///             thread's current id with zero signature churn.
///
/// Cost discipline: minting is one relaxed fetch_add; Current() is one
/// thread_local read. Worker threads of a parallel scan never inherit
/// the caller's slot — events they record carry trace 0 ("unattributed")
/// unless the call site passes the context explicitly.
struct TraceContext {
  /// Process-unique, never 0 for a minted context. 0 means "no context"
  /// everywhere (flight events, spans, exports).
  uint64_t trace_id = 0;
  /// Owning session id, or 0 for the head (non-session) paths.
  uint64_t session_id = 0;
  /// Per-origin operation ordinal (the minting counter's value), letting
  /// an exporter order one session's operations without timestamps.
  uint64_t query_seq = 0;

  bool valid() const { return trace_id != 0; }
};

/// Mints a fresh process-unique context. `session_id` 0 = head path.
TraceContext Mint(uint64_t session_id = 0);

/// The context installed on this thread, or an all-zero context when no
/// ScopedTraceContext is live (e.g. exec-pool workers).
const TraceContext& Current();

/// Shorthand for Current().trace_id — the flight recorder's stamp.
uint64_t CurrentTraceId();

/// RAII installer: makes `ctx` the thread's current context for the
/// scope's lifetime and restores the previous one on exit, so nested
/// entry points (a query issued from inside a recovery callback, the
/// shell driving the Dbms) attribute correctly.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  const TraceContext& ctx() const;

 private:
  TraceContext installed_;
  TraceContext saved_;
};

}  // namespace causal
}  // namespace statdb

#endif  // STATDB_CAUSAL_TRACE_CONTEXT_H_

#ifndef STATDB_CAUSAL_SLOW_QUERY_LOG_H_
#define STATDB_CAUSAL_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sync.h"
#include "flight/flight_recorder.h"
#include "obs/trace.h"

namespace statdb {
namespace causal {

/// Bounded log of the slowest-behaving operations (DESIGN.md §17).
///
/// When a completed top-level operation exceeds the latency threshold,
/// the core captures its full QueryTrace *and* joins in every flight
/// event stamped with the same trace_id — so one slow-log entry is the
/// reassembled story of that operation across both telemetry streams
/// (spans for "where did the time go", events for "what did the system
/// do": cache verdict, delta flush, WAL commit, retries).
///
/// The log is a drop-oldest ring: capture is off the query hot path
/// (only threshold-exceeding operations pay it), so a Mutex-guarded
/// deque is the right tool — no seqlock heroics needed here.
///
/// Like the flight recorder's black box, the log can arm a one-shot
/// automatic dump (STATDB_SLOWLOG_DUMP): the first degraded/DATA_LOSS
/// transition ships whatever slow queries led up to the incident.
class SlowQueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 32;
  static constexpr double kDefaultThresholdMs = 50.0;

  /// One captured slow operation: the trace, the flight events that
  /// carry its trace_id, and the headline wall time.
  struct Entry {
    QueryTrace trace;
    std::vector<FlightEvent> events;
    double wall_ms = 0;
  };

  explicit SlowQueryLog(size_t capacity = kDefaultCapacity);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Capture gate. Off by default: the owner only builds QueryTraces on
  /// every operation (the log's raw material) while the log is enabled.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void set_threshold_ms(double ms) {
    threshold_ms_.store(ms, std::memory_order_relaxed);
  }
  double threshold_ms() const {
    return threshold_ms_.load(std::memory_order_relaxed);
  }

  /// The hot-path gate: one relaxed load and a compare. The core calls
  /// this on every completed operation and only builds a capture when
  /// it answers true.
  bool ShouldCapture(double wall_ms) const {
    return wall_ms >= threshold_ms();
  }

  /// Copies `trace` and joins `flight`'s current window filtered to
  /// trace.trace_id() (flight == nullptr skips the join). Drops the
  /// oldest entry when full.
  void Capture(const QueryTrace& trace, double wall_ms,
               const FlightRecorder* flight);

  std::vector<Entry> Snapshot() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// {"slow_query_log": {reason, threshold_ms, capacity, captured,
  ///  dropped, entries: [{trace_id, wall_ms, outcome, trace,
  ///  flight_events}, ...]}}
  std::string DumpJson(const std::string& reason = "manual") const;

  /// Arms the one-shot incident dump; empty path disarms.
  void set_auto_dump_path(std::string path);
  std::string auto_dump_path() const;

  /// Fires at most once per log lifetime (first caller wins). Returns
  /// true if this call wrote the dump. Safe from any thread.
  bool AutoDumpOnce(const std::string& reason);
  uint64_t auto_dumps() const {
    return auto_dumps_.load(std::memory_order_relaxed);
  }

  void Clear();

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<double> threshold_ms_{kDefaultThresholdMs};
  std::atomic<uint64_t> captured_{0};
  std::atomic<uint64_t> dropped_{0};

  mutable Mutex mu_;
  std::deque<Entry> entries_ STATDB_GUARDED_BY(mu_);

  std::atomic<bool> auto_dump_armed_{false};
  std::atomic<bool> auto_dump_fired_{false};
  std::atomic<uint64_t> auto_dumps_{0};
  mutable Mutex auto_dump_mu_;
  std::string auto_dump_path_ STATDB_GUARDED_BY(auto_dump_mu_);
};

}  // namespace causal
}  // namespace statdb

#endif  // STATDB_CAUSAL_SLOW_QUERY_LOG_H_

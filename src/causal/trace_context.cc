#include "causal/trace_context.h"

namespace statdb {
namespace causal {

namespace {

/// Process-wide mint counter. Starts at 1 so trace_id 0 stays the
/// reserved "no context" value.
std::atomic<uint64_t> g_next_trace_id{1};

/// The thread's installed context. A plain thread_local (not atomic):
/// only the owning thread reads or writes its slot.
thread_local TraceContext t_current{};

}  // namespace

TraceContext Mint(uint64_t session_id) {
  TraceContext ctx;
  ctx.trace_id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  ctx.session_id = session_id;
  ctx.query_seq = ctx.trace_id;
  return ctx;
}

const TraceContext& Current() { return t_current; }

uint64_t CurrentTraceId() { return t_current.trace_id; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : installed_(ctx), saved_(t_current) {
  t_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_current = saved_; }

const TraceContext& ScopedTraceContext::ctx() const { return installed_; }

}  // namespace causal
}  // namespace statdb

#ifndef STATDB_CAUSAL_SLO_H_
#define STATDB_CAUSAL_SLO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

namespace statdb {
namespace causal {

/// Latency targets for one query class. A sample over target_p50_ms
/// consumes headroom, over target_p99_ms consumes error budget; an
/// error-status operation always burns budget regardless of latency.
struct SloTarget {
  double p50_ms = 5.0;
  double p95_ms = 50.0;
  double p99_ms = 200.0;
  /// Fraction of operations allowed to miss the p99 target (or error)
  /// before the budget reads as fully burned. 0.01 = the classic 99%.
  double error_budget = 0.01;
};

/// Point-in-time view of one class, for tests and the JSON export.
struct SloClassSnapshot {
  std::string query_class;
  SloTarget target;
  uint64_t total = 0;
  uint64_t over_p50 = 0;
  uint64_t over_p95 = 0;
  uint64_t over_p99 = 0;
  uint64_t errors = 0;
  /// Observed quantile upper bounds from the class's LatencyHistogram.
  double observed_p50_ms = 0;
  double observed_p95_ms = 0;
  double observed_p99_ms = 0;
  /// Fraction of the error budget consumed: burn 1.0 = budget exhausted,
  /// > 1.0 = the class is out of SLO. (over_p99 + errors) / (budget * total).
  double budget_burn = 0;
};

/// Per-query-class tail-latency SLO tracker (DESIGN.md §17).
///
/// Every completed top-level operation calls Record(class, ms, is_error);
/// the tracker bumps the class's breach counters against its targets and
/// feeds the class's LatencyHistogram (registered in the shared
/// MetricsRegistry as "slo.<class>.ms", so the observed quantiles ride
/// the same instrument machinery as every other latency series).
///
/// Hot-path cost: one map lookup under a SharedMutex reader lock (the
/// class set stabilizes after the first few operations; writers only
/// appear on first sight of a class), then relaxed counter bumps.
class SloTracker {
 public:
  explicit SloTracker(MetricsRegistry* registry) : registry_(registry) {}

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Installs (or replaces) the targets for `query_class`. Classes not
  /// configured get DefaultTarget() on first Record.
  void SetTarget(const std::string& query_class, const SloTarget& target);

  static SloTarget DefaultTarget() { return SloTarget{}; }

  /// Accounts one completed operation of `query_class`.
  void Record(const std::string& query_class, double ms, bool is_error);

  SloClassSnapshot Snapshot(const std::string& query_class) const;
  std::vector<SloClassSnapshot> SnapshotAll() const;

  /// {"slo": {"classes": [ {class, targets, observed, breaches,
  ///  error_budget}, ... ]}}
  std::string DumpJson() const;

 private:
  struct ClassState {
    SloTarget target;
    Counter total;
    Counter over_p50;
    Counter over_p95;
    Counter over_p99;
    Counter errors;
    LatencyHistogram* ms = nullptr;  // registry-owned "slo.<class>.ms"
  };

  /// Reader-locked on the hot path; exclusive only when a class is first
  /// seen or retargeted. unique_ptr keeps instrument addresses stable
  /// across rebalances, same rule as MetricsRegistry.
  ClassState* GetOrCreate(const std::string& query_class);

  MetricsRegistry* registry_;
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<ClassState>> classes_
      STATDB_GUARDED_BY(mu_);
};

}  // namespace causal
}  // namespace statdb

#endif  // STATDB_CAUSAL_SLO_H_

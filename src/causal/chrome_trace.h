#ifndef STATDB_CAUSAL_CHROME_TRACE_H_
#define STATDB_CAUSAL_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "flight/flight_recorder.h"
#include "obs/trace.h"

namespace statdb {
namespace causal {

/// Chrome trace-event (catapult) exporter (DESIGN.md §17).
///
/// Renders QueryTrace spans and flight events as a JSON document that
/// chrome://tracing and Perfetto open directly:
///
///   {"traceEvents": [...], "displayTimeUnit": "ms"}
///
/// Layout: one process (pid 1, "statdb"), one lane (tid) per session —
/// lane 0 is the head (non-session) path, lane N is session id N. Each
/// trace becomes an enclosing "X" complete event (the whole operation)
/// with its spans nested inside as further "X" events; flight events
/// become "i" instants on the lane of the trace that stamped them
/// (trace 0 instants land on lane 0).
///
/// Clock alignment: spans carry offsets from their trace's epoch, flight
/// events carry offsets from the recorder's epoch — two different
/// clocks. Each trace is anchored at the earliest flight event carrying
/// its trace_id (its kQueryBegin, in practice); traces with no flight
/// events are laid end-to-end after a running cursor so they stay
/// visible rather than piling up at t=0.
///
/// `trace_id_filter` != 0 restricts the export to that one operation —
/// the shell's `trace <id>` command.
std::string ExportChromeTrace(const std::vector<QueryTrace>& traces,
                              const std::vector<FlightEvent>& events,
                              uint64_t trace_id_filter = 0);

}  // namespace causal
}  // namespace statdb

#endif  // STATDB_CAUSAL_CHROME_TRACE_H_

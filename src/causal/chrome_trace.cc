#include "causal/chrome_trace.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/json.h"

namespace statdb {
namespace causal {

namespace {

/// One complete ("X") event. ts/dur are in microseconds per the format.
std::string CompleteEvent(const std::string& name, const std::string& cat,
                          double ts_ms, double dur_ms, uint64_t tid,
                          const std::string& args_json) {
  return obs::JsonObject()
      .Str("name", name)
      .Str("cat", cat)
      .Str("ph", "X")
      .Num("ts", ts_ms * 1000.0)
      .Num("dur", dur_ms * 1000.0)
      .Int("pid", 1)
      .Int("tid", tid)
      .Raw("args", args_json)
      .Build();
}

/// One instant ("i") event, thread-scoped.
std::string InstantEvent(const std::string& name, double ts_ms,
                         uint64_t tid, const std::string& args_json) {
  return obs::JsonObject()
      .Str("name", name)
      .Str("cat", "flight")
      .Str("ph", "i")
      .Str("s", "t")
      .Num("ts", ts_ms * 1000.0)
      .Int("pid", 1)
      .Int("tid", tid)
      .Raw("args", args_json)
      .Build();
}

std::string LaneName(uint64_t session_id) {
  return session_id == 0 ? std::string("head")
                         : "session " + std::to_string(session_id);
}

}  // namespace

std::string ExportChromeTrace(const std::vector<QueryTrace>& traces,
                              const std::vector<FlightEvent>& events,
                              uint64_t trace_id_filter) {
  // Pass 1: per-trace anchors (earliest flight event stamp) and lanes.
  std::map<uint64_t, double> anchor_ms;
  std::map<uint64_t, uint64_t> lane_of_trace;
  for (const FlightEvent& ev : events) {
    if (ev.trace == 0) continue;
    auto it = anchor_ms.find(ev.trace);
    if (it == anchor_ms.end() || ev.t_ms < it->second) {
      anchor_ms[ev.trace] = ev.t_ms;
    }
  }
  for (const QueryTrace& t : traces) {
    if (t.trace_id() != 0) lane_of_trace[t.trace_id()] = t.session_id();
  }
  // Unanchored traces go end-to-end after everything that is anchored.
  double cursor = 0;
  for (const auto& [id, ms] : anchor_ms) cursor = std::max(cursor, ms);
  for (const FlightEvent& ev : events) cursor = std::max(cursor, ev.t_ms);

  std::vector<std::string> rows;
  std::set<uint64_t> lanes;

  for (const QueryTrace& t : traces) {
    if (trace_id_filter != 0 && t.trace_id() != trace_id_filter) continue;
    double anchor;
    auto it = anchor_ms.find(t.trace_id());
    if (t.trace_id() != 0 && it != anchor_ms.end()) {
      anchor = it->second;
    } else {
      anchor = cursor + 1.0;
      cursor = anchor + std::max(t.total_ms(), 0.001);
    }
    uint64_t lane = t.session_id();
    lanes.insert(lane);
    std::string op_name =
        t.operation() + " " + t.function() + "(" + t.attribute() + ")";
    rows.push_back(CompleteEvent(
        op_name, "operation", anchor, std::max(t.total_ms(), 0.001), lane,
        obs::JsonObject()
            .Int("trace_id", t.trace_id())
            .Str("view", t.view())
            .Str("outcome", TraceOutcomeName(t.outcome()))
            .Build()));
    for (size_t i = 0; i < t.size(); ++i) {
      const TraceSpan& s = t.span(i);
      std::string name = SpanKindName(s.kind);
      if (s.detail >= 0) name += "[" + std::to_string(s.detail) + "]";
      rows.push_back(CompleteEvent(
          name, "span", anchor + s.start_ms, std::max(s.wall_ms, 0.001),
          lane,
          obs::JsonObject()
              .Int("trace_id", t.trace_id())
              .Int("rows", s.rows)
              .Int("pages", s.pages)
              .Build()));
    }
  }

  for (const FlightEvent& ev : events) {
    if (trace_id_filter != 0 && ev.trace != trace_id_filter) continue;
    uint64_t lane = 0;
    auto it = lane_of_trace.find(ev.trace);
    if (it != lane_of_trace.end()) lane = it->second;
    lanes.insert(lane);
    rows.push_back(InstantEvent(
        FlightEventKindName(ev.kind), ev.t_ms, lane,
        obs::JsonObject()
            .Str("label", ev.label)
            .Raw("a", std::to_string(ev.a))
            .Raw("b", std::to_string(ev.b))
            .Num("x", ev.x)
            .Int("trace", ev.trace)
            .Build()));
  }

  // Lane metadata last: harmless to viewers, and keeps the event rows
  // (which schema checks index) at the front.
  rows.push_back(obs::JsonObject()
                     .Str("name", "process_name")
                     .Str("ph", "M")
                     .Int("pid", 1)
                     .Raw("args",
                          obs::JsonObject().Str("name", "statdb").Build())
                     .Build());
  for (uint64_t lane : lanes) {
    rows.push_back(
        obs::JsonObject()
            .Str("name", "thread_name")
            .Str("ph", "M")
            .Int("pid", 1)
            .Int("tid", lane)
            .Raw("args",
                 obs::JsonObject().Str("name", LaneName(lane)).Build())
            .Build());
  }

  return obs::JsonObject()
      .Raw("traceEvents", obs::JsonArray(rows))
      .Str("displayTimeUnit", "ms")
      .Build();
}

}  // namespace causal
}  // namespace statdb

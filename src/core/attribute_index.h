#ifndef STATDB_CORE_ATTRIBUTE_INDEX_H_
#define STATDB_CORE_ATTRIBUTE_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/view.h"
#include "storage/btree.h"

namespace statdb {

/// A secondary index over one view attribute — §2.3: reference-pattern
/// information "can then be used, for example, to create auxiliary
/// storage structures such as indices". Entries map
/// `OrderedEncode(value) ++ big-endian(row)` → "" in a paged B+-tree, so
/// equality and range predicates enumerate matching rows without a
/// column scan. The DBMS maintains the index under predicate updates and
/// rollback; missing (null) cells are indexed under the null rank so
/// "IS NULL" probes work too.
class AttributeIndex {
 public:
  /// Builds the index from the view's current column contents.
  static Result<std::unique_ptr<AttributeIndex>> Build(
      const ConcreteView& view, const std::string& attribute,
      BufferPool* pool);

  AttributeIndex(const AttributeIndex&) = delete;
  AttributeIndex& operator=(const AttributeIndex&) = delete;

  const std::string& attribute() const { return attribute_; }
  uint64_t entry_count() const { return tree_->size(); }

  /// Visits every row whose cell equals `v` (including v = null).
  Status ForEachEqual(const Value& v,
                      const std::function<Status(uint64_t row)>& fn) const;

  /// Visits every row whose cell lies in [lo, hi] (both inclusive,
  /// nulls excluded).
  Status ForEachInRange(const Value& lo, const Value& hi,
                        const std::function<Status(uint64_t row)>& fn) const;

  /// Count variants of the above.
  Result<uint64_t> CountEqual(const Value& v) const;
  Result<uint64_t> CountInRange(const Value& lo, const Value& hi) const;

  /// Maintains the index after `row`'s cell changed old -> fresh.
  Status ApplyChange(uint64_t row, const Value& old_value,
                     const Value& new_value);

 private:
  AttributeIndex(std::string attribute, std::unique_ptr<BPlusTree> tree)
      : attribute_(std::move(attribute)), tree_(std::move(tree)) {}

  static std::string EntryKey(const Value& v, uint64_t row);

  std::string attribute_;
  std::unique_ptr<BPlusTree> tree_;
};

}  // namespace statdb

#endif  // STATDB_CORE_ATTRIBUTE_INDEX_H_

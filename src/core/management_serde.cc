#include "core/management_serde.h"

#include "common/bytes.h"
#include "relational/expr.h"

namespace statdb {

namespace {

constexpr uint32_t kMagic = 0x5344424d;  // "SDBM"
constexpr uint32_t kVersion = 1;

void WriteDerived(const DerivedColumnDef& def, ByteWriter* w) {
  w->PutString(def.name);
  w->PutU8(static_cast<uint8_t>(def.kind));
  w->PutU8(def.row_expr != nullptr ? 1 : 0);
  if (def.row_expr != nullptr) def.row_expr->Serialize(w);
  w->PutU8(static_cast<uint8_t>(def.generator));
  w->PutU32(static_cast<uint32_t>(def.generator_inputs.size()));
  for (const std::string& in : def.generator_inputs) w->PutString(in);
  w->PutU8(def.out_of_date ? 1 : 0);
}

Result<DerivedColumnDef> ReadDerived(ByteReader* r) {
  DerivedColumnDef def;
  STATDB_ASSIGN_OR_RETURN(def.name, r->GetString());
  STATDB_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  def.kind = static_cast<DerivedRuleKind>(kind);
  STATDB_ASSIGN_OR_RETURN(uint8_t has_expr, r->GetU8());
  if (has_expr != 0) {
    STATDB_ASSIGN_OR_RETURN(def.row_expr, Expr::Deserialize(r));
  }
  STATDB_ASSIGN_OR_RETURN(uint8_t gen, r->GetU8());
  def.generator = static_cast<ColumnGenerator>(gen);
  STATDB_ASSIGN_OR_RETURN(uint32_t nin, r->GetU32());
  for (uint32_t i = 0; i < nin; ++i) {
    STATDB_ASSIGN_OR_RETURN(std::string in, r->GetString());
    def.generator_inputs.push_back(std::move(in));
  }
  STATDB_ASSIGN_OR_RETURN(uint8_t ood, r->GetU8());
  def.out_of_date = ood != 0;
  return def;
}

void WriteHistory(const UpdateHistory& history, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(history.entries().size()));
  for (const UpdateLogEntry& e : history.entries()) {
    w->PutU64(e.version);
    w->PutString(e.description);
    w->PutU32(static_cast<uint32_t>(e.changes.size()));
    for (const CellChange& ch : e.changes) {
      w->PutU64(ch.row);
      w->PutString(ch.column);
      EncodeValue(ch.old_value, w);
      EncodeValue(ch.new_value, w);
    }
  }
}

Status ReadHistory(ByteReader* r, UpdateHistory* history) {
  STATDB_ASSIGN_OR_RETURN(uint32_t nentries, r->GetU32());
  for (uint32_t i = 0; i < nentries; ++i) {
    UpdateLogEntry e;
    STATDB_ASSIGN_OR_RETURN(e.version, r->GetU64());
    STATDB_ASSIGN_OR_RETURN(e.description, r->GetString());
    STATDB_ASSIGN_OR_RETURN(uint32_t nchanges, r->GetU32());
    e.changes.reserve(nchanges);
    for (uint32_t c = 0; c < nchanges; ++c) {
      CellChange ch;
      STATDB_ASSIGN_OR_RETURN(ch.row, r->GetU64());
      STATDB_ASSIGN_OR_RETURN(ch.column, r->GetString());
      STATDB_ASSIGN_OR_RETURN(ch.old_value, DecodeValue(r));
      STATDB_ASSIGN_OR_RETURN(ch.new_value, DecodeValue(r));
      e.changes.push_back(std::move(ch));
    }
    STATDB_RETURN_IF_ERROR(history->Append(std::move(e)));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<uint8_t>> SerializeManagementState(
    const ManagementDatabase& mdb) {
  ByteWriter w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  std::vector<std::string> names = mdb.ViewNames();
  w.PutU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    STATDB_ASSIGN_OR_RETURN(const ViewRecord* rec, mdb.GetView(name));
    w.PutString(rec->name);
    w.PutString(rec->canonical_definition);
    w.PutU64(rec->version);
    w.PutU8(static_cast<uint8_t>(rec->policy));
    w.PutU32(static_cast<uint32_t>(rec->derived_columns.size()));
    for (const DerivedColumnDef& def : rec->derived_columns) {
      WriteDerived(def, &w);
    }
    WriteHistory(rec->history, &w);
  }
  return w.Take();
}

Status RestoreManagementState(const std::vector<uint8_t>& bytes,
                              ManagementDatabase* mdb) {
  if (!mdb->ViewNames().empty()) {
    return FailedPreconditionError(
        "restore into a non-empty management database");
  }
  ByteReader r(bytes);
  STATDB_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kMagic) {
    return DataLossError("bad management-state magic");
  }
  STATDB_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kVersion) {
    return DataLossError("unsupported management-state version");
  }
  STATDB_ASSIGN_OR_RETURN(uint32_t nviews, r.GetU32());
  for (uint32_t v = 0; v < nviews; ++v) {
    STATDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
    STATDB_ASSIGN_OR_RETURN(std::string canonical, r.GetString());
    STATDB_ASSIGN_OR_RETURN(uint64_t view_version, r.GetU64());
    STATDB_ASSIGN_OR_RETURN(uint8_t policy, r.GetU8());
    STATDB_RETURN_IF_ERROR(mdb->RegisterView(
        name, canonical, static_cast<MaintenancePolicy>(policy)));
    STATDB_ASSIGN_OR_RETURN(ViewRecord * rec, mdb->GetView(name));
    rec->version = view_version;
    STATDB_ASSIGN_OR_RETURN(uint32_t nderived, r.GetU32());
    for (uint32_t d = 0; d < nderived; ++d) {
      STATDB_ASSIGN_OR_RETURN(DerivedColumnDef def, ReadDerived(&r));
      rec->derived_columns.push_back(std::move(def));
    }
    STATDB_RETURN_IF_ERROR(ReadHistory(&r, &rec->history));
  }
  if (!r.exhausted()) {
    return DataLossError("trailing bytes in management state");
  }
  return Status::OK();
}

}  // namespace statdb

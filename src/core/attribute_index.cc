#include "core/attribute_index.h"

#include <cstring>

#include "relational/key_encoding.h"

namespace statdb {

namespace {

void AppendRowBigEndian(uint64_t row, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(char(uint8_t(row >> shift)));
  }
}

}  // namespace

std::string AttributeIndex::EntryKey(const Value& v, uint64_t row) {
  std::string key = OrderedEncode(v);
  key.push_back('\x00');  // value/row separator keeps prefixes unambiguous
  AppendRowBigEndian(row, &key);
  return key;
}

Result<std::unique_ptr<AttributeIndex>> AttributeIndex::Build(
    const ConcreteView& view, const std::string& attribute,
    BufferPool* pool) {
  STATDB_ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> tree,
                          BPlusTree::Create(pool));
  STATDB_ASSIGN_OR_RETURN(std::vector<Value> column,
                          view.ReadColumn(attribute));
  for (uint64_t row = 0; row < column.size(); ++row) {
    STATDB_RETURN_IF_ERROR(tree->Put(EntryKey(column[row], row), ""));
  }
  return std::unique_ptr<AttributeIndex>(
      new AttributeIndex(attribute, std::move(tree)));
}

Status AttributeIndex::ForEachEqual(
    const Value& v, const std::function<Status(uint64_t)>& fn) const {
  std::string prefix = OrderedEncode(v);
  prefix.push_back('\x00');
  Status inner = Status::OK();
  STATDB_RETURN_IF_ERROR(tree_->ScanPrefix(
      prefix, [&](const std::string& key, const std::string&) {
        uint64_t row = 0;
        for (size_t i = key.size() - 8; i < key.size(); ++i) {
          row = (row << 8) | uint8_t(key[i]);
        }
        inner = fn(row);
        return inner.ok();
      }));
  return inner;
}

Status AttributeIndex::ForEachInRange(
    const Value& lo, const Value& hi,
    const std::function<Status(uint64_t)>& fn) const {
  if (lo.is_null() || hi.is_null()) {
    return InvalidArgumentError("range bounds must be non-null");
  }
  std::string lo_key = OrderedEncode(lo);  // before any (lo, row) entry
  std::string hi_key = OrderedEncode(hi);
  hi_key.push_back('\x01');  // just past every (hi, row) entry
  Status inner = Status::OK();
  STATDB_RETURN_IF_ERROR(tree_->ScanRange(
      lo_key, hi_key, [&](const std::string& key, const std::string&) {
        if (key.empty() || key[0] == '\x00') return true;  // null rank
        uint64_t row = 0;
        for (size_t i = key.size() - 8; i < key.size(); ++i) {
          row = (row << 8) | uint8_t(key[i]);
        }
        inner = fn(row);
        return inner.ok();
      }));
  return inner;
}

Result<uint64_t> AttributeIndex::CountEqual(const Value& v) const {
  uint64_t count = 0;
  STATDB_RETURN_IF_ERROR(ForEachEqual(v, [&count](uint64_t) {
    ++count;
    return Status::OK();
  }));
  return count;
}

Result<uint64_t> AttributeIndex::CountInRange(const Value& lo,
                                              const Value& hi) const {
  uint64_t count = 0;
  STATDB_RETURN_IF_ERROR(ForEachInRange(lo, hi, [&count](uint64_t) {
    ++count;
    return Status::OK();
  }));
  return count;
}

Status AttributeIndex::ApplyChange(uint64_t row, const Value& old_value,
                                   const Value& new_value) {
  STATDB_RETURN_IF_ERROR(tree_->Delete(EntryKey(old_value, row)));
  return tree_->Put(EntryKey(new_value, row), "");
}

}  // namespace statdb

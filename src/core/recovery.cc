// Durability and crash recovery for StatisticalDbms (DESIGN.md §11).
//
// Protocol: force-at-commit + no-steal physical redo. Each logical
// mutation accumulates dirty pages in the disk buffer pool (no-steal
// keeps them off the platter), then commits by appending ONE redo record
// — the dirty page images plus a manifest of the whole recoverable
// in-memory state — to the WAL device and only then writing the pages in
// place. Recovery replays every complete record's images (idempotent:
// they are full page images) and rebuilds the in-memory object graph
// from the last manifest; a torn tail is discarded and triggers the
// paper's §4.3 invalidate-all fallback for the attribute it hinted at.

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "core/dbms.h"
#include "core/management_serde.h"
#include "session/session.h"

namespace statdb {
namespace {

constexpr uint32_t kManifestMagic = 0x4D414E49;  // "MANI"
// v2 appends the delta-buffer occupancy section (which summaries still
// owe a flush). v1 manifests (no section) are still readable.
constexpr uint32_t kManifestVersion = 2;

constexpr int kIoRetries = 3;

template <typename Op>
Status RetryIo(const Op& op) {
  Status s = op();
  for (int i = 0; i < kIoRetries && s.code() == StatusCode::kUnavailable;
       ++i) {
    s = op();
  }
  return s;
}

void WriteSchema(ByteWriter* w, const Schema& schema) {
  w->PutU32(static_cast<uint32_t>(schema.size()));
  for (const Attribute& a : schema.attrs()) {
    w->PutString(a.name);
    w->PutU8(static_cast<uint8_t>(a.type));
    w->PutU8(static_cast<uint8_t>(a.kind));
    w->PutString(a.code_table);
    w->PutU8(a.summarizable ? 1 : 0);
  }
}

Result<Schema> ReadSchema(ByteReader* r) {
  STATDB_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  std::vector<Attribute> attrs;
  attrs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Attribute a;
    STATDB_ASSIGN_OR_RETURN(a.name, r->GetString());
    STATDB_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    a.type = static_cast<DataType>(type);
    STATDB_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
    a.kind = static_cast<AttributeKind>(kind);
    STATDB_ASSIGN_OR_RETURN(a.code_table, r->GetString());
    STATDB_ASSIGN_OR_RETURN(uint8_t summarizable, r->GetU8());
    a.summarizable = summarizable != 0;
    attrs.push_back(std::move(a));
  }
  return Schema(std::move(attrs));
}

void WritePageIds(ByteWriter* w, const std::vector<PageId>& ids) {
  w->PutU32(static_cast<uint32_t>(ids.size()));
  for (PageId id : ids) w->PutU64(id);
}

Result<std::vector<PageId>> ReadPageIds(ByteReader* r) {
  STATDB_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  std::vector<PageId> ids;
  ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    STATDB_ASSIGN_OR_RETURN(PageId id, r->GetU64());
    ids.push_back(id);
  }
  return ids;
}

}  // namespace

Status StatisticalDbms::GuardMutable() const {
  MutexLock lock(session_mu_);
  if (degraded_) {
    return FailedPreconditionError("read-only degraded mode: " +
                                   degraded_reason_);
  }
  return Status::OK();
}

void StatisticalDbms::EnterDegraded(const std::string& reason) {
  {
    MutexLock lock(session_mu_);
    if (degraded_) return;  // first failure wins
    degraded_ = true;
    degraded_reason_ = reason;
  }
  // Latch released before calling into metrics/flight: session_mu_ is a
  // leaf lock and those subsystems take their own.
  metrics_.GetCounter("dbms.degraded_entered")->Inc();
  // The flip to read-only is exactly the moment the black box exists
  // for: record it and (if armed) ship the event window to disk.
  flight_.Record(causal::Current(), FlightEventKind::kDegraded, reason);
  flight_.AutoDumpOnce("degraded");
  slow_log_.AutoDumpOnce("degraded");
}

Status StatisticalDbms::EnableDurability(const std::string& wal_device) {
  if (wal_ != nullptr) {
    return FailedPreconditionError("durability already enabled");
  }
  STATDB_ASSIGN_OR_RETURN(SimulatedDevice * device,
                          storage_->GetDevice(wal_device));
  auto wal = std::make_unique<RedoLog>(device);
  // Position the append cursor; the records themselves are consumed by
  // Recover(), which re-scans.
  STATDB_RETURN_IF_ERROR(wal->Open().status());
  wal_ = std::move(wal);
  wal_device_name_ = wal_device;
  // The log device joins the black box: its retries and injected faults
  // matter most of all during commit and recovery.
  device->set_flight_recorder(&flight_);
  if (Result<BufferPool*> wal_pool = storage_->GetPool(wal_device);
      wal_pool.ok()) {
    wal_pool.value()->set_flight_recorder(&flight_);
  }
  STATDB_ASSIGN_OR_RETURN(BufferPool * disk, storage_->GetPool(disk_device_));
  disk->set_no_steal(true);
  return Status::OK();
}

Result<std::vector<uint8_t>> StatisticalDbms::BuildManifest() const {
  ByteWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(kManifestVersion);

  // Catalog data sets (both tape raws and disk views).
  std::vector<std::string> dataset_names = catalog_.DataSetNames();
  w.PutU32(static_cast<uint32_t>(dataset_names.size()));
  for (const std::string& name : dataset_names) {
    STATDB_ASSIGN_OR_RETURN(const DataSetInfo* info,
                            catalog_.GetDataSet(name));
    w.PutString(info->name);
    WriteSchema(&w, info->schema);
    w.PutU8(static_cast<uint8_t>(info->location));
    w.PutString(info->description);
    w.PutU64(info->approx_rows);
  }

  // Raw tables: schema + heap-file shape (the tape pages themselves were
  // force-flushed at load time, before any commit referenced them).
  w.PutU32(static_cast<uint32_t>(raw_tables_.size()));
  for (const auto& [name, table] : raw_tables_) {
    w.PutString(name);
    WriteSchema(&w, table->schema());
    WritePageIds(&w, table->page_ids());
    w.PutU64(table->num_rows());
  }

  // Views: schema, version, per-column file shape + dictionary, and the
  // summary index anchor. Secondary indexes and armed maintainers are
  // deliberately absent — both rebuild on demand.
  w.PutU32(static_cast<uint32_t>(views_.size()));
  for (const auto& [name, state] : views_) {
    w.PutString(name);
    WriteSchema(&w, state.view->schema());
    w.PutU64(state.view->version());
    w.PutU64(state.view->num_rows());
    std::vector<TransposedTable::ColumnState> columns =
        state.view->ExportColumns();
    w.PutU32(static_cast<uint32_t>(columns.size()));
    for (const TransposedTable::ColumnState& col : columns) {
      WritePageIds(&w, col.pages);
      w.PutU64(col.count);
      w.PutU32(static_cast<uint32_t>(col.labels.size()));
      for (const std::string& label : col.labels) w.PutString(label);
    }
    w.PutU64(state.summary->index()->root_id());
    w.PutU64(state.summary->index()->size());
    w.PutU64(state.summary->entry_count());
  }

  // Management database: view records, policies, histories, derived
  // columns — reusing the session-persistence serializer.
  STATDB_ASSIGN_OR_RETURN(std::vector<uint8_t> mdb_bytes,
                          SerializeManagementState(mdb_));
  w.PutU32(static_cast<uint32_t>(mdb_bytes.size()));
  w.PutRaw(mdb_bytes.data(), mdb_bytes.size());

  // v2: delta-buffer occupancy, as (view, attribute) pairs. The buffered
  // mutations themselves are durable (force-at-commit ships the dirty
  // data pages), but their summary flushes may not have happened yet —
  // recovery must know which cached entries still owe one, so it can
  // stamp them stale instead of serving pre-delta values as fresh.
  uint32_t npending = 0;
  for (const auto& [name, state] : views_) {
    (void)name;
    npending +=
        static_cast<uint32_t>(state.deltas.PendingAttributes().size());
  }
  w.PutU32(npending);
  for (const auto& [name, state] : views_) {
    for (const std::string& attr : state.deltas.PendingAttributes()) {
      w.PutString(name);
      w.PutString(attr);
    }
  }
  return w.Take();
}

Status StatisticalDbms::ApplyManifest(const std::vector<uint8_t>& manifest) {
  ByteReader r(manifest);
  STATDB_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kManifestMagic) {
    return DataLossError("manifest magic mismatch");
  }
  STATDB_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version < 1 || version > kManifestVersion) {
    return DataLossError("unsupported manifest version " +
                         std::to_string(version));
  }
  STATDB_ASSIGN_OR_RETURN(BufferPool * tape_pool,
                          storage_->GetPool(tape_device_));
  STATDB_ASSIGN_OR_RETURN(BufferPool * disk_pool,
                          storage_->GetPool(disk_device_));

  catalog_ = Catalog{};
  raw_tables_.clear();
  views_.clear();
  mdb_ = ManagementDatabase{};

  STATDB_ASSIGN_OR_RETURN(uint32_t ndatasets, r.GetU32());
  for (uint32_t i = 0; i < ndatasets; ++i) {
    DataSetInfo info;
    STATDB_ASSIGN_OR_RETURN(info.name, r.GetString());
    STATDB_ASSIGN_OR_RETURN(info.schema, ReadSchema(&r));
    STATDB_ASSIGN_OR_RETURN(uint8_t location, r.GetU8());
    info.location = static_cast<DataSetLocation>(location);
    STATDB_ASSIGN_OR_RETURN(info.description, r.GetString());
    STATDB_ASSIGN_OR_RETURN(info.approx_rows, r.GetU64());
    STATDB_RETURN_IF_ERROR(catalog_.RegisterDataSet(std::move(info)));
  }

  STATDB_ASSIGN_OR_RETURN(uint32_t ntables, r.GetU32());
  for (uint32_t i = 0; i < ntables; ++i) {
    STATDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
    STATDB_ASSIGN_OR_RETURN(Schema schema, ReadSchema(&r));
    STATDB_ASSIGN_OR_RETURN(std::vector<PageId> pages, ReadPageIds(&r));
    STATDB_ASSIGN_OR_RETURN(uint64_t record_count, r.GetU64());
    raw_tables_.emplace(
        name, std::make_unique<StoredRowTable>(std::move(schema), tape_pool,
                                               std::move(pages),
                                               record_count));
  }

  STATDB_ASSIGN_OR_RETURN(uint32_t nviews, r.GetU32());
  for (uint32_t i = 0; i < nviews; ++i) {
    STATDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
    STATDB_ASSIGN_OR_RETURN(Schema schema, ReadSchema(&r));
    STATDB_ASSIGN_OR_RETURN(uint64_t view_version, r.GetU64());
    STATDB_ASSIGN_OR_RETURN(uint64_t num_rows, r.GetU64());
    STATDB_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
    std::vector<TransposedTable::ColumnState> columns;
    columns.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      TransposedTable::ColumnState col;
      STATDB_ASSIGN_OR_RETURN(col.pages, ReadPageIds(&r));
      STATDB_ASSIGN_OR_RETURN(col.count, r.GetU64());
      STATDB_ASSIGN_OR_RETURN(uint32_t nlabels, r.GetU32());
      col.labels.reserve(nlabels);
      for (uint32_t l = 0; l < nlabels; ++l) {
        STATDB_ASSIGN_OR_RETURN(std::string label, r.GetString());
        col.labels.push_back(std::move(label));
      }
      columns.push_back(std::move(col));
    }
    STATDB_ASSIGN_OR_RETURN(uint64_t tree_root, r.GetU64());
    STATDB_ASSIGN_OR_RETURN(uint64_t tree_size, r.GetU64());
    STATDB_ASSIGN_OR_RETURN(uint64_t entry_count, r.GetU64());
    ViewState state;
    state.view = std::make_unique<ConcreteView>(
        name, std::move(schema), disk_pool, std::move(columns), num_rows,
        view_version);
    state.summary = SummaryDatabase::Attach(disk_pool, tree_root, tree_size,
                                            entry_count);
    views_.emplace(name, std::move(state));
  }

  STATDB_ASSIGN_OR_RETURN(uint32_t mdb_len, r.GetU32());
  STATDB_ASSIGN_OR_RETURN(const uint8_t* mdb_data, r.GetRaw(mdb_len));
  std::vector<uint8_t> mdb_bytes(mdb_data, mdb_data + mdb_len);
  STATDB_RETURN_IF_ERROR(RestoreManagementState(mdb_bytes, &mdb_));

  // v2 delta-occupancy section: those summaries never got their flush
  // (the maintainers and buffers died with the process) — invalidate so
  // the next query recomputes instead of trusting a pre-delta value.
  if (version >= 2) {
    STATDB_ASSIGN_OR_RETURN(uint32_t npending, r.GetU32());
    for (uint32_t i = 0; i < npending; ++i) {
      STATDB_ASSIGN_OR_RETURN(std::string vname, r.GetString());
      STATDB_ASSIGN_OR_RETURN(std::string attr, r.GetString());
      auto it = views_.find(vname);
      if (it == views_.end()) continue;
      STATDB_ASSIGN_OR_RETURN(
          uint64_t stamped, it->second.summary->InvalidateAttribute(attr));
      (void)stamped;
    }
  }
  if (!r.exhausted()) {
    return DataLossError("manifest has trailing bytes");
  }
  return Status::OK();
}

Status StatisticalDbms::CommitDurable(const std::string& attr_hint,
                                      bool force) {
  if (wal_ == nullptr) return Status::OK();
  {
    MutexLock lock(session_mu_);
    if (degraded_) {
      return FailedPreconditionError("commit in degraded mode: " +
                                     degraded_reason_);
    }
  }
  STATDB_ASSIGN_OR_RETURN(BufferPool * disk, storage_->GetPool(disk_device_));
  WalRecord record;
  record.lsn = wal_->last_lsn() + 1;
  record.attr_hint = attr_hint;
  record.pages = disk->CollectDirty(record.lsn);
  if (record.pages.empty() && !force) return Status::OK();
  Result<std::vector<uint8_t>> manifest = BuildManifest();
  if (!manifest.ok()) {
    EnterDegraded("manifest serialization failed: " +
                  manifest.status().ToString());
    return manifest.status();
  }
  record.manifest = std::move(manifest).value();
  TraceTimer wal_timer;
  Status s = wal_->Append(record);
  if (!s.ok()) {
    EnterDegraded("wal append failed: " + s.ToString());
    return s;
  }
  // Log record is durable; now the in-place writes may proceed.
  s = disk->FlushAll();
  if (!s.ok()) {
    EnterDegraded("post-commit page write-back failed: " + s.ToString());
    return s;
  }
  metrics_.GetCounter("dbms.commits")->Inc();
  if (flight_.enabled()) {
    // The WAL commit joins the trace of whatever operation triggered it
    // (a query's CommitAfterQuery tail, an update, recovery itself).
    flight_.Record(causal::Current(), FlightEventKind::kWalCommit,
                   attr_hint.empty() ? std::string("commit") : attr_hint,
                   int64_t(record.lsn), int64_t(record.pages.size()),
                   wal_timer.ElapsedMs());
  }
  return Status::OK();
}

void StatisticalDbms::CommitAfterQuery(const std::string& attr_hint) {
  if (wal_ == nullptr || degraded()) return;
  // CommitDurable degrades on failure; the computed answer itself is
  // still correct, so query paths swallow the commit error.
  (void)CommitDurable(attr_hint, /*force=*/false);
}

Status StatisticalDbms::Recover() {
  // The wrapper owns the "recover"-labeled trace so the body's early
  // returns cannot skip sink emission — the same split the query paths
  // use (Query vs QueryImpl). It also mints the recovery's causal
  // context: every kRecoveryStep and the fallback-invalidation commit's
  // kWalCommit land under one trace_id.
  causal::ScopedTraceContext scope(causal::Mint());
  TraceTimer timer;
  std::optional<QueryTrace> trace;
  if (WantTrace()) {
    trace.emplace();
    trace->SetLabel("recover", "", "", "");
    trace->SetContext(scope.ctx().trace_id, scope.ctx().session_id,
                      scope.ctx().query_seq);
  }
  QueryTrace* tr = trace ? &*trace : nullptr;
  Status s = RecoverImpl(tr);
  double ms = timer.ElapsedMs();
  slo_.Record("recover", ms, !s.ok());
  if (tr != nullptr) {
    tr->SetOutcome(s.ok() ? TraceOutcome::kComputed : TraceOutcome::kError);
    tr->SetTotalMs(ms);
    if (trace_sink_ != nullptr) trace_sink_->OnQueryTrace(*tr);
    if (slow_log_.enabled() && slow_log_.ShouldCapture(ms)) {
      slow_log_.Capture(*tr, ms, &flight_);
    }
  }
  return s;
}

Status StatisticalDbms::RecoverImpl(QueryTrace* trace) {
  if (wal_ == nullptr) {
    return FailedPreconditionError("Recover() without EnableDurability()");
  }
  // Recovery replaces every ConcreteView; the session routing table
  // would be left holding dangling live pointers and unreachable
  // captures. Forbid it while analysts are pinned, and re-register the
  // rebuilt views below.
  if (sessions_ != nullptr && sessions_->open_sessions() > 0) {
    return FailedPreconditionError(
        "Recover() with open analyst sessions; close them first");
  }
  WalScanResult scan;
  {
    ScopedSpan span(trace, SpanKind::kWalScan);
    STATDB_ASSIGN_OR_RETURN(scan, wal_->Open());
    span.SetRows(scan.records.size());
  }
  flight_.Record(causal::Current(), FlightEventKind::kRecoveryStep,
                 "wal_scan", int64_t(scan.records.size()),
                 scan.torn_tail ? 1 : 0);
  metrics_.GetCounter("dbms.recovery.records_replayed")
      ->Inc(scan.records.size());
  if (scan.torn_tail) {
    metrics_.GetCounter("dbms.recovery.torn_tails")->Inc();
  }

  // Reboot semantics: whatever the pools held is gone; only the platters
  // and the log survive.
  STATDB_ASSIGN_OR_RETURN(BufferPool * disk, storage_->GetPool(disk_device_));
  STATDB_ASSIGN_OR_RETURN(BufferPool * tape, storage_->GetPool(tape_device_));
  disk->DiscardAll();
  tape->DiscardAll();

  // Physical redo: rewrite every committed page image, oldest first.
  // Idempotent — the images are complete pages.
  STATDB_ASSIGN_OR_RETURN(SimulatedDevice * disk_dev,
                          storage_->GetDevice(disk_device_));
  uint64_t pages_replayed = 0;
  {
    ScopedSpan span(trace, SpanKind::kRedoReplay);
    for (const WalRecord& rec : scan.records) {
      for (const auto& [pid, page] : rec.pages) {
        while (disk_dev->page_count() <= pid) {
          disk_dev->AllocatePage();
        }
        STATDB_RETURN_IF_ERROR(
            RetryIo([&] { return disk_dev->WritePage(pid, page); }));
        ++pages_replayed;
      }
    }
    span.SetRows(pages_replayed);
    span.SetPages(pages_replayed);
  }
  flight_.Record(causal::Current(), FlightEventKind::kRecoveryStep,
                 "redo_replay", int64_t(pages_replayed),
                 int64_t(scan.records.size()));
  metrics_.GetCounter("dbms.recovery.pages_replayed")->Inc(pages_replayed);

  {
    ScopedSpan span(trace, SpanKind::kManifestApply);
    if (!scan.records.empty()) {
      STATDB_RETURN_IF_ERROR(ApplyManifest(scan.records.back().manifest));
      span.SetRows(views_.size());
    } else {
      // Empty log: a fresh installation. Reset to pristine state.
      catalog_ = Catalog{};
      raw_tables_.clear();
      views_.clear();
      mdb_ = ManagementDatabase{};
    }
  }
  flight_.Record(causal::Current(), FlightEventKind::kRecoveryStep,
                 "manifest_apply", int64_t(views_.size()),
                 int64_t(raw_tables_.size()));

  // §4.3 fallback for the lost tail: "after each update operation all
  // the values associated with the updated attribute will be marked as
  // invalid" — here applied because the update's redo record did not
  // survive. Without even a hint, every cached entry is suspect.
  if (scan.torn_tail) {
    uint64_t invalidated = 0;
    {
      ScopedSpan span(trace, SpanKind::kFallbackInvalidate);
      for (auto& [name, state] : views_) {
        if (!scan.torn_attr_hint.empty()) {
          STATDB_ASSIGN_OR_RETURN(
              uint64_t n,
              state.summary->InvalidateAttribute(scan.torn_attr_hint));
          invalidated += n;
        } else {
          std::vector<SummaryKey> keys;
          STATDB_RETURN_IF_ERROR(
              state.summary->ForEach([&keys](const SummaryEntry& e) {
                keys.push_back(e.key);
                return Status::OK();
              }));
          for (const SummaryKey& key : keys) {
            STATDB_RETURN_IF_ERROR(state.summary->MarkStale(key));
          }
          invalidated += keys.size();
        }
      }
      span.SetRows(invalidated);
    }
    flight_.Record(causal::Current(), FlightEventKind::kRecoveryStep,
                   "fallback_invalidate", int64_t(invalidated),
                   scan.torn_attr_hint.empty() ? 0 : 1);
    metrics_.GetCounter("dbms.recovery.fallback_invalidations")
        ->Inc(invalidated);
    // The invalidations themselves must be durable, or the next crash
    // would resurrect the suspect entries.
    STATDB_RETURN_IF_ERROR(CommitDurable(scan.torn_attr_hint, false));
  }

  // Re-register the rebuilt views with the session layer (no sessions
  // are open — guarded above — so resetting the routing entries drops
  // nothing reachable).
  if (sessions_ != nullptr) {
    for (auto& [name, state] : views_) {
      sessions_->BootstrapView(name, state.view.get());
    }
  }

  {
    MutexLock lock(session_mu_);
    ++recoveries_;
  }
  metrics_.GetCounter("dbms.recoveries")->Inc();
  return Status::OK();
}

}  // namespace statdb

#include "core/view_def.h"

#include "common/bytes.h"

#include <sstream>

namespace statdb {

std::string ViewDefinition::Canonical() const {
  std::ostringstream os;
  os << "FROM " << source;
  if (predicate != nullptr) {
    os << " WHERE " << predicate->ToString();
  }
  if (sample_fraction < 1.0) {
    os << " SAMPLE " << sample_fraction << " SEED " << sample_seed;
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ",";
      os << group_by[i];
    }
    os << " AGG ";
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (i > 0) os << ",";
      os << static_cast<int>(aggregates[i].kind) << ":"
         << aggregates[i].input << ":" << aggregates[i].weight << ">"
         << aggregates[i].output;
    }
  }
  if (!projection.empty()) {
    os << " PROJECT ";
    for (size_t i = 0; i < projection.size(); ++i) {
      if (i > 0) os << ",";
      os << projection[i];
    }
  }
  return os.str();
}

Result<Table> ViewDefinition::Materialize(const Table& raw) const {
  Table current = raw;
  if (predicate != nullptr) {
    STATDB_ASSIGN_OR_RETURN(current, Select(current, *predicate));
  }
  if (sample_fraction < 1.0) {
    Rng rng(sample_seed);
    STATDB_ASSIGN_OR_RETURN(current,
                            SampleBernoulli(current, sample_fraction, &rng));
  }
  if (!group_by.empty()) {
    STATDB_ASSIGN_OR_RETURN(current,
                            GroupByAggregate(current, group_by, aggregates));
  }
  if (!projection.empty()) {
    STATDB_ASSIGN_OR_RETURN(current, Project(current, projection));
  }
  return current;
}

void ViewDefinition::Serialize(ByteWriter* w) const {
  w->PutString(source);
  w->PutU8(predicate != nullptr ? 1 : 0);
  if (predicate != nullptr) predicate->Serialize(w);
  w->PutU32(static_cast<uint32_t>(projection.size()));
  for (const std::string& p : projection) w->PutString(p);
  w->PutDouble(sample_fraction);
  w->PutU64(sample_seed);
  w->PutU32(static_cast<uint32_t>(group_by.size()));
  for (const std::string& g : group_by) w->PutString(g);
  w->PutU32(static_cast<uint32_t>(aggregates.size()));
  for (const AggSpec& a : aggregates) {
    w->PutU8(static_cast<uint8_t>(a.kind));
    w->PutString(a.input);
    w->PutString(a.weight);
    w->PutString(a.output);
  }
}

Result<ViewDefinition> ViewDefinition::Deserialize(ByteReader* r) {
  ViewDefinition def;
  STATDB_ASSIGN_OR_RETURN(def.source, r->GetString());
  STATDB_ASSIGN_OR_RETURN(uint8_t has_pred, r->GetU8());
  if (has_pred != 0) {
    STATDB_ASSIGN_OR_RETURN(def.predicate, Expr::Deserialize(r));
  }
  STATDB_ASSIGN_OR_RETURN(uint32_t nproj, r->GetU32());
  for (uint32_t i = 0; i < nproj; ++i) {
    STATDB_ASSIGN_OR_RETURN(std::string p, r->GetString());
    def.projection.push_back(std::move(p));
  }
  STATDB_ASSIGN_OR_RETURN(def.sample_fraction, r->GetDouble());
  STATDB_ASSIGN_OR_RETURN(def.sample_seed, r->GetU64());
  STATDB_ASSIGN_OR_RETURN(uint32_t ngroup, r->GetU32());
  for (uint32_t i = 0; i < ngroup; ++i) {
    STATDB_ASSIGN_OR_RETURN(std::string g, r->GetString());
    def.group_by.push_back(std::move(g));
  }
  STATDB_ASSIGN_OR_RETURN(uint32_t nagg, r->GetU32());
  for (uint32_t i = 0; i < nagg; ++i) {
    AggSpec a;
    STATDB_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
    a.kind = static_cast<AggSpec::Kind>(kind);
    STATDB_ASSIGN_OR_RETURN(a.input, r->GetString());
    STATDB_ASSIGN_OR_RETURN(a.weight, r->GetString());
    STATDB_ASSIGN_OR_RETURN(a.output, r->GetString());
    def.aggregates.push_back(std::move(a));
  }
  return def;
}

Result<ViewDefinition> ViewDefinitionFromSubjectRequest(
    const std::vector<std::pair<std::string, std::string>>& request) {
  if (request.empty()) {
    return InvalidArgumentError("empty subject view request");
  }
  ViewDefinition def;
  def.source = request[0].first;
  for (const auto& [dataset, attribute] : request) {
    if (dataset != def.source) {
      return InvalidArgumentError(
          "subject request spans multiple data sets: " + def.source +
          " and " + dataset);
    }
    def.projection.push_back(attribute);
  }
  return def;
}

}  // namespace statdb

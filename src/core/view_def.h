#ifndef STATDB_CORE_VIEW_DEF_H_
#define STATDB_CORE_VIEW_DEF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "relational/expr.h"
#include "relational/ops.h"
#include "relational/table.h"

namespace statdb {

/// Declarative specification of a concrete view over one raw data set:
/// an optional selection predicate, an optional projection, an optional
/// sample, and an optional group-by aggregation — "the traditional
/// relational operations which create and transform tables ... [and]
/// aggregates" (§2.3). Steps apply in the order select → sample →
/// aggregate → project.
struct ViewDefinition {
  std::string source;  // raw data set name in the catalog

  ExprPtr predicate;                      // nullptr = keep all rows
  std::vector<std::string> projection;    // empty = all columns

  /// Bernoulli sampling fraction in (0,1]; 1.0 = no sampling (§2.2's
  /// exploratory samples). Sampling uses `sample_seed` so a definition
  /// is reproducible (and two identical definitions are the same view).
  double sample_fraction = 1.0;
  uint64_t sample_seed = 42;

  std::vector<std::string> group_by;      // empty = no aggregation
  std::vector<AggSpec> aggregates;

  /// Canonical text form. Two definitions with the same canonical form
  /// materialize the same view — the duplicate-detection key of §2.3.
  std::string Canonical() const;

  /// Runs the pipeline over the raw table.
  Result<Table> Materialize(const Table& raw) const;

  /// Binary persistence (the Management Database stores view
  /// definitions, §3.2).
  void Serialize(ByteWriter* w) const;
  static Result<ViewDefinition> Deserialize(ByteReader* r);
};

/// Turns a SUBJECT navigation session's view request — the
/// (dataset, attribute) pairs of SubjectSession::GenerateViewRequest —
/// into a projection ViewDefinition (§2.3: "at the end of the session
/// [SUBJECT] can generate requests to the DBMS for the view described by
/// his path"). All attributes must come from one data set.
Result<ViewDefinition> ViewDefinitionFromSubjectRequest(
    const std::vector<std::pair<std::string, std::string>>& request);

}  // namespace statdb

#endif  // STATDB_CORE_VIEW_DEF_H_

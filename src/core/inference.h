#ifndef STATDB_CORE_INFERENCE_H_
#define STATDB_CORE_INFERENCE_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "rules/function_registry.h"
#include "summary/summary_db.h"

namespace statdb {

/// Outcome of answering a query from other cached values instead of the
/// data — Rowe's Database Abstract idea (§5.1: "a set of inference rules
/// will be used to calculate the results of other functions, based on
/// the values stored in the Database Abstract").
struct InferenceResult {
  SummaryResult result;
  /// Exact derivations (mean = sum/count) vs. estimates (mean from a
  /// histogram's bucket midpoints). The Database Abstract "attempts to
  /// provide the users with estimates as the results of queries".
  bool exact = true;
  std::string derivation;  // human-readable rule trace
};

/// Tries to derive `function(attribute; params)` from fresh (non-stale)
/// entries already in `summary_db`, without touching the view data.
/// Returns NOT_FOUND when no rule applies.
///
/// Exact rules: mean↔sum/count, stddev↔variance, range=max−min,
/// median=quantile(p=0.5)=quartiles[1], min/max from a covering
/// histogram's range... Estimate rules (exact=false): mean/median from
/// histogram bucket midpoints.
Result<InferenceResult> InferFromSummaries(SummaryDatabase* summary_db,
                                           const std::string& function,
                                           const std::string& attribute,
                                           const FunctionParams& params);

}  // namespace statdb

#endif  // STATDB_CORE_INFERENCE_H_

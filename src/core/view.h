#ifndef STATDB_CORE_VIEW_H_
#define STATDB_CORE_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/expr.h"
#include "relational/stored_table.h"
#include "rules/update_history.h"

namespace statdb {

/// Rows-to-touch + new-value specification of a predicate update (§4.1:
/// "the analyst will specify an update to the data set by using a
/// predicate in a similar manner to what is currently done in relational
/// systems").
struct UpdateSpec {
  /// Which rows (nullptr = every row).
  ExprPtr predicate;
  /// The attribute being updated.
  std::string column;
  /// New value as an expression over the row; nullptr marks the cell
  /// missing (invalidating a suspicious measurement, §3.1).
  ExprPtr value;
  std::string description;
};

/// A concrete (materialized) view: the analyst's private working copy,
/// stored transposed on the "disk" device (§2.3, §2.6). Wraps the
/// storage with versioning and predicate updates that report cell-level
/// deltas for history logging and Summary-Database maintenance.
class ConcreteView {
 public:
  ConcreteView(std::string name, Schema schema, BufferPool* pool)
      : name_(std::move(name)),
        table_(std::make_unique<TransposedTable>(std::move(schema), pool)) {}

  /// Re-attaches to an existing on-device view (crash recovery).
  ConcreteView(std::string name, Schema schema, BufferPool* pool,
               std::vector<TransposedTable::ColumnState> columns,
               uint64_t num_rows, uint64_t version)
      : name_(std::move(name)),
        table_(std::make_unique<TransposedTable>(
            std::move(schema), pool, std::move(columns), num_rows)),
        version_(version) {}

  /// Durable column shapes, for the recovery manifest.
  std::vector<TransposedTable::ColumnState> ExportColumns() const {
    return table_->ExportColumns();
  }

  const std::string& name() const { return name_; }
  const Schema& schema() const { return table_->schema(); }
  uint64_t num_rows() const { return table_->num_rows(); }
  uint64_t version() const { return version_; }

  /// Bulk-load at materialization time (does not bump the version).
  Status LoadFrom(const Table& t) { return table_->LoadFrom(t); }

  /// Applies a predicate update, returning the cell changes it made.
  /// Bumps the version iff at least one cell changed.
  Result<std::vector<CellChange>> ApplyUpdate(const UpdateSpec& spec);

  /// Point write used by rollback and derived-column regeneration.
  /// Does NOT bump the version (callers manage versioning).
  Status WriteCell(uint64_t row, const std::string& column, const Value& v);

  Result<Value> ReadCell(uint64_t row, const std::string& column) const {
    return table_->ReadCell(row, column);
  }

  /// Column reads (each touches only that column's pages).
  Result<std::vector<Value>> ReadColumn(const std::string& name) const {
    return table_->ReadColumn(name);
  }
  Result<std::vector<double>> ReadNumericColumn(const std::string& name) const {
    return table_->ReadNumericColumn(name);
  }

  /// Chunked-scan shard reads (thread-safe for concurrent readers; see
  /// TransposedTable). The parallel execution layer binds these as its
  /// range readers.
  Result<std::vector<double>> ReadNumericRange(const std::string& name,
                                               uint64_t begin,
                                               uint64_t end) const {
    return table_->ReadNumericRange(name, begin, end);
  }
  Status ReadNumericPairsRange(const std::string& a, const std::string& b,
                               uint64_t begin, uint64_t end,
                               std::vector<double>* xs,
                               std::vector<double>* ys) const {
    return table_->ReadNumericPairsRange(a, b, begin, end, xs, ys);
  }

  Result<Row> ReadRow(uint64_t row) const { return table_->ReadRow(row); }

  /// RLE sidecars for compressed-domain scans (DESIGN.md §14). Built
  /// after bulk load; invalidated automatically by cell writes.
  Status CompressColumns(double min_ratio = 2.0) {
    return table_->CompressColumns(min_ratio);
  }
  const CompressedColumnFile* CompressedSidecar(
      const std::string& name) const {
    return table_->CompressedSidecar(name);
  }
  /// Shared ownership for scans that may race an invalidating writer —
  /// see TransposedTable::CompressedSidecarRef.
  std::shared_ptr<const CompressedColumnFile> CompressedSidecarRef(
      const std::string& name) const {
    return table_->CompressedSidecarRef(name);
  }

  /// Appends an all-null column (derived columns, §2.2).
  Status AddColumn(const Attribute& attr) { return table_->AddColumn(attr); }

  /// In-memory snapshot (reads every column).
  Result<Table> Snapshot() const { return table_->ReadAll(); }

  void SetVersion(uint64_t v) { version_ = v; }
  void BumpVersion() { ++version_; }

 private:
  std::string name_;
  std::unique_ptr<TransposedTable> table_;
  uint64_t version_ = 0;
};

}  // namespace statdb

#endif  // STATDB_CORE_VIEW_H_

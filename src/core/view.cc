#include "core/view.h"

#include <algorithm>

namespace statdb {

Result<std::vector<CellChange>> ConcreteView::ApplyUpdate(
    const UpdateSpec& spec) {
  const Schema& schema = table_->schema();
  STATDB_ASSIGN_OR_RETURN(size_t target_idx, schema.IndexOf(spec.column));
  (void)target_idx;

  // Read only the columns the predicate and value expressions touch —
  // the transposed layout makes this the cheap path.
  std::vector<std::string> needed;
  needed.push_back(spec.column);
  auto add_refs = [&needed](const ExprPtr& e) {
    if (e == nullptr) return;
    for (const std::string& c : e->ReferencedColumns()) {
      if (std::find(needed.begin(), needed.end(), c) == needed.end()) {
        needed.push_back(c);
      }
    }
  };
  add_refs(spec.predicate);
  add_refs(spec.value);

  std::vector<Attribute> sub_attrs;
  std::vector<std::vector<Value>> sub_cols;
  for (const std::string& name : needed) {
    STATDB_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name));
    sub_attrs.push_back(schema.attr(idx));
    STATDB_ASSIGN_OR_RETURN(std::vector<Value> col, table_->ReadColumn(name));
    sub_cols.push_back(std::move(col));
  }
  Schema sub_schema{sub_attrs};

  std::vector<CellChange> changes;
  uint64_t n = table_->num_rows();
  for (uint64_t r = 0; r < n; ++r) {
    Row row;
    row.reserve(needed.size());
    for (const auto& col : sub_cols) row.push_back(col[r]);
    if (spec.predicate != nullptr) {
      STATDB_ASSIGN_OR_RETURN(Value keep,
                              spec.predicate->Eval(row, sub_schema));
      if (!IsTrue(keep)) continue;
    }
    Value new_value;  // null = mark missing
    if (spec.value != nullptr) {
      STATDB_ASSIGN_OR_RETURN(new_value, spec.value->Eval(row, sub_schema));
    }
    // Coerce to the column's declared type *before* logging: the stored
    // cell, the history record and the maintenance delta must all see
    // the same value (an int column truncates real-valued expressions).
    if (!new_value.is_null()) {
      const Attribute& target = sub_attrs[0];
      if (target.type == DataType::kInt64 &&
          new_value.type() == DataType::kDouble) {
        STATDB_ASSIGN_OR_RETURN(int64_t as_int, new_value.ToInt());
        new_value = Value::Int(as_int);
      } else if (target.type == DataType::kDouble &&
                 new_value.type() == DataType::kInt64) {
        new_value = Value::Real(double(new_value.AsInt()));
      } else if (new_value.type() != target.type) {
        return InvalidArgumentError(
            "update value type does not match column " + target.name);
      }
    }
    const Value& old_value = row[0];  // spec.column is needed[0]
    if (old_value == new_value) continue;
    STATDB_RETURN_IF_ERROR(table_->WriteCell(r, spec.column, new_value));
    changes.push_back(CellChange{r, spec.column, old_value, new_value});
  }
  if (!changes.empty()) ++version_;
  return changes;
}

Status ConcreteView::WriteCell(uint64_t row, const std::string& column,
                               const Value& v) {
  return table_->WriteCell(row, column, v);
}

}  // namespace statdb

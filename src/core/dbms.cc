#include "core/dbms.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "causal/chrome_trace.h"
#include "check/db_auditor.h"
#include "delta/maintenance.h"
#include "exec/chunked_scanner.h"
#include "exec/compressed_scan.h"
#include "exec/thread_pool.h"
#include "obs/json.h"
#include "session/session.h"
#include "storage/column_file.h"
#include "stats/descriptive.h"
#include "stats/correlation.h"
#include "stats/crosstab.h"
#include "stats/regression.h"
#include "stats/tests.h"

namespace statdb {

namespace {

/// Functions that are still meaningful on encoded category attributes.
bool MeaningfulOnCategories(const std::string& function) {
  return function == "count" || function == "distinct" ||
         function == "mode" || function == "histogram";
}

/// True for functions whose answer finishes from the merged partial
/// states of a parallel scan (DescriptiveStats + ValueCounts) without
/// ever materializing the column. Everything else rides the keep_values
/// path and is computed by the registry on the gathered column, which is
/// bit-identical to the serial read.
bool IsMergeable(const std::string& function) {
  return function == "count" || function == "sum" || function == "mean" ||
         function == "variance" || function == "stddev" ||
         function == "min" || function == "max" || function == "range" ||
         function == "mode" || function == "distinct" ||
         function == "histogram";
}

bool NeedsValueCounts(const std::string& function) {
  return function == "mode" || function == "distinct" ||
         function == "histogram";
}

TraceOutcome OutcomeOfSource(AnswerSource source) {
  switch (source) {
    case AnswerSource::kCacheHit: return TraceOutcome::kCacheHit;
    case AnswerSource::kStaleCacheHit: return TraceOutcome::kStaleCacheHit;
    case AnswerSource::kInferred: return TraceOutcome::kInferred;
    case AnswerSource::kComputed: return TraceOutcome::kComputed;
  }
  return TraceOutcome::kUnknown;
}

/// Batch provenance: the most expensive source any request needed.
TraceOutcome OutcomeOfBatch(const std::vector<QueryAnswer>& answers) {
  TraceOutcome out = TraceOutcome::kCacheHit;
  for (const QueryAnswer& a : answers) {
    TraceOutcome o = OutcomeOfSource(a.source);
    if (static_cast<uint8_t>(o) > static_cast<uint8_t>(out)) out = o;
  }
  return answers.empty() ? TraceOutcome::kUnknown : out;
}

uint64_t PagesOf(uint64_t rows) {
  return (rows + ColumnFile::kCellsPerPage - 1) / ColumnFile::kCellsPerPage;
}

/// How the attribute's stored raws decode for the compressed-domain
/// kernels (mirrors TransposedTable's cell encoding). Callers only reach
/// here after CheckQueryable, so the attribute is numeric.
simd::RunValueKind RunKindOf(const Schema& schema, size_t attr_idx) {
  return schema.attr(attr_idx).type == DataType::kDouble
             ? simd::RunValueKind::kDoubleBits
             : simd::RunValueKind::kInt64;
}

/// "view.fn(attr)" — the label format the flight recorder and the
/// workload profiler share, so `top` rows and flight events correlate.
std::string QueryLabel(const std::string& view, const std::string& function,
                       const std::string& attribute) {
  return view + "." + function + "(" + attribute + ")";
}

WorkloadProfiler::QueryOutcome ProfilerOutcome(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kCacheHit:
      return WorkloadProfiler::QueryOutcome::kCacheHit;
    case TraceOutcome::kStaleCacheHit:
      return WorkloadProfiler::QueryOutcome::kStaleServe;
    case TraceOutcome::kInferred:
      return WorkloadProfiler::QueryOutcome::kInferred;
    case TraceOutcome::kComputed:
      return WorkloadProfiler::QueryOutcome::kComputed;
    case TraceOutcome::kUnknown:
    case TraceOutcome::kError:
      break;
  }
  return WorkloadProfiler::QueryOutcome::kFailed;
}

/// Finishes one mergeable statistic from the merged scan state,
/// reproducing the serial functions' values and domain errors (empty
/// columns fail with the exact strings the serial path uses).
Result<SummaryResult> FinishMergeable(const std::string& function,
                                      const FunctionParams& params,
                                      const ColumnScanResult& scan) {
  const DescriptiveStats& d = scan.desc;
  if (function == "count") return SummaryResult::Scalar(double(d.count));
  if (function == "sum") return SummaryResult::Scalar(d.sum);
  if (function == "distinct") {
    return SummaryResult::Scalar(double(scan.counts.Distinct()));
  }
  if (function == "mode") {
    STATDB_ASSIGN_OR_RETURN(double m, scan.counts.ModeValue());
    return SummaryResult::Scalar(m);
  }
  if (function == "histogram") {
    if (d.count == 0) {
      return InvalidArgumentError("histogram of an empty column");
    }
    double lo = d.min;
    double hi = d.max;
    if (lo == hi) hi = lo + 1.0;  // degenerate constant column
    size_t buckets = static_cast<size_t>(params.GetOr("buckets", 20));
    STATDB_ASSIGN_OR_RETURN(Histogram h,
                            scan.counts.ToHistogram(buckets, lo, hi));
    return SummaryResult::Histo(std::move(h));
  }
  if (d.count == 0) {
    return InvalidArgumentError("statistic of an empty column");
  }
  if (function == "mean") return SummaryResult::Scalar(d.mean);
  if (function == "variance") return SummaryResult::Scalar(d.Variance());
  if (function == "stddev") return SummaryResult::Scalar(d.StdDev());
  if (function == "min") return SummaryResult::Scalar(d.min);
  if (function == "max") return SummaryResult::Scalar(d.max);
  if (function == "range") return SummaryResult::Scalar(d.max - d.min);
  return InternalError("FinishMergeable on non-mergeable " + function);
}

}  // namespace

StatisticalDbms::StatisticalDbms(StorageManager* storage,
                                 std::string tape_device,
                                 std::string disk_device)
    : storage_(storage),
      tape_device_(std::move(tape_device)),
      disk_device_(std::move(disk_device)) {
  // Resolve the hot-path instruments once; queries bump them lock-free.
  obs_query_ms_ = metrics_.GetHistogram("dbms.query_ms");
  obs_pool_task_ms_ = metrics_.GetHistogram("exec.pool.task_ms");
  obs_outcomes_[size_t(TraceOutcome::kUnknown)] =
      metrics_.GetCounter("dbms.answers.unknown");
  obs_outcomes_[size_t(TraceOutcome::kCacheHit)] =
      metrics_.GetCounter("dbms.answers.cache_hit");
  obs_outcomes_[size_t(TraceOutcome::kStaleCacheHit)] =
      metrics_.GetCounter("dbms.answers.stale_cache_hit");
  obs_outcomes_[size_t(TraceOutcome::kInferred)] =
      metrics_.GetCounter("dbms.answers.inferred");
  obs_outcomes_[size_t(TraceOutcome::kComputed)] =
      metrics_.GetCounter("dbms.answers.computed");
  obs_outcomes_[size_t(TraceOutcome::kError)] =
      metrics_.GetCounter("dbms.answers.error");
  obs_scan_compressed_ = metrics_.GetCounter("dbms.scan.compressed_domain");
  obs_scan_materialized_ = metrics_.GetCounter("dbms.scan.materialized");
  obs_pool_submitted_ = metrics_.GetCounter("exec.pool.tasks_submitted");
  obs_pool_executed_ = metrics_.GetCounter("exec.pool.tasks_executed");
  obs_pool_rejected_ = metrics_.GetCounter("exec.pool.tasks_rejected");
  obs_pool_queue_max_ = metrics_.GetGauge("exec.pool.queue_depth_max");
  obs_pool_task_ms_total_ = metrics_.GetGauge("exec.pool.task_ms_total");
  obs_delta_buffered_ = metrics_.GetCounter("dbms.delta.buffered");
  obs_delta_flushed_ = metrics_.GetCounter("dbms.delta.flushed");
  obs_delta_policy_switches_ =
      metrics_.GetCounter("dbms.delta.policy_switches");

  // Black-box wiring: the storage layer below reports I/O retries,
  // checksum DATA_LOSS verdicts and injected faults into the same ring
  // the query paths feed. STATDB_FLIGHT_DUMP (a path) arms the
  // dump-on-first-failure behavior the crash matrix relies on.
  // getenv is fine here: read once during construction, before any
  // worker thread exists, and nothing in statdb calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* dump_path = std::getenv("STATDB_FLIGHT_DUMP");
      dump_path != nullptr && dump_path[0] != '\0') {
    flight_.set_auto_dump_path(dump_path);
  }
  // STATDB_SLOWLOG_DUMP is the slow-query log's twin: arming it also
  // enables capture (the log needs traces built per query to have
  // anything to ship when the incident dump fires).
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* slow_path = std::getenv("STATDB_SLOWLOG_DUMP");
      slow_path != nullptr && slow_path[0] != '\0') {
    slow_log_.set_auto_dump_path(slow_path);
    slow_log_.set_enabled(true);
  }
  for (const std::string& dev : {tape_device_, disk_device_}) {
    if (Result<BufferPool*> pool = storage_->GetPool(dev); pool.ok()) {
      pool.value()->set_flight_recorder(&flight_);
    }
    if (Result<SimulatedDevice*> device = storage_->GetDevice(dev);
        device.ok()) {
      device.value()->set_flight_recorder(&flight_);
    }
  }
}

StatisticalDbms::~StatisticalDbms() {
  std::vector<std::string> wired = {tape_device_, disk_device_};
  if (!wal_device_name_.empty()) wired.push_back(wal_device_name_);
  for (const std::string& dev : wired) {
    if (Result<BufferPool*> pool = storage_->GetPool(dev); pool.ok()) {
      pool.value()->set_flight_recorder(nullptr);
    }
    if (Result<SimulatedDevice*> device = storage_->GetDevice(dev);
        device.ok()) {
      device.value()->set_flight_recorder(nullptr);
    }
  }
}

void StatisticalDbms::EmitQueryObs(const TraceTimer& timer,
                                   QueryTrace* trace, TraceOutcome outcome,
                                   const std::string& query_class) {
  double ms = timer.ElapsedMs();
  obs_query_ms_->Record(ms);
  obs_outcomes_[size_t(outcome)]->Inc();
  slo_.Record(query_class, ms, outcome == TraceOutcome::kError);
  if (trace != nullptr) {
    trace->SetOutcome(outcome);
    trace->SetTotalMs(ms);
    if (trace_sink_ != nullptr) trace_sink_->OnQueryTrace(*trace);
    if (slow_log_.enabled() && slow_log_.ShouldCapture(ms)) {
      slow_log_.Capture(*trace, ms, &flight_);
    }
  }
}

void StatisticalDbms::NoteQueryOutcome(const causal::TraceContext& ctx,
                                       const std::string& view,
                                       const std::string& function,
                                       const std::string& attribute,
                                       TraceOutcome outcome, double wall_ms) {
  if (flight_.enabled()) {
    flight_.Record(ctx, FlightEventKind::kQueryEnd,
                   QueryLabel(view, function, attribute),
                   static_cast<int64_t>(outcome), 0, wall_ms);
  }
  profiler_.NoteQuery(view, function, attribute, ProfilerOutcome(outcome),
                      wall_ms);
}

std::string StatisticalDbms::DumpChromeTrace(uint64_t trace_id_filter) {
  std::vector<QueryTrace> traces;
  for (const causal::SlowQueryLog::Entry& e : slow_log_.Snapshot()) {
    traces.push_back(e.trace);
  }
  return causal::ExportChromeTrace(traces, flight_.SnapshotEvents(),
                                   trace_id_filter);
}

void StatisticalDbms::TickTimeseries() {
  timeseries_.Push(TakeStatSnapshot());
}

void StatisticalDbms::EnableTimeseries(uint64_t every_n_mutations) {
  {
    MutexLock lock(session_mu_);
    ts_every_n_mutations_ = every_n_mutations;
    ts_mutations_since_tick_ = 0;
  }
  // Outside the latch: TickTimeseries re-reads mutation_seq_.
  if (every_n_mutations > 0) TickTimeseries();  // the delta baseline
}

void StatisticalDbms::MaybeTickTimeseries() {
  bool tick = false;
  {
    MutexLock lock(session_mu_);
    ++mutation_seq_;
    if (ts_every_n_mutations_ != 0 &&
        ++ts_mutations_since_tick_ >= ts_every_n_mutations_) {
      ts_mutations_since_tick_ = 0;
      tick = true;
    }
  }
  if (tick) TickTimeseries();
}

std::string StatisticalDbms::ExposeText() {
  TickTimeseries();
  return timeseries_.ExposeText();
}

StatPoint StatisticalDbms::TakeStatSnapshot() {
  StatPoint p;
  p.t_ms = flight_.NowMs();
  {
    MutexLock lock(session_mu_);
    p.seq = mutation_seq_;
  }
  // The registry's counters and gauges become scalar series directly;
  // histograms contribute their count and tail.
  MetricsSnapshot snap = metrics_.Snapshot();
  for (const auto& [name, v] : snap.counters) {
    p.values[name] = static_cast<double>(v);
  }
  for (const auto& [name, v] : snap.gauges) p.values[name] = v;
  for (const auto& [name, h] : snap.histograms) {
    p.values[name + ".count"] = static_cast<double>(h.count);
    p.values[name + ".p99_ms"] = h.p99_ms;
  }
  // Canonical keys the delta/rate derivation consumes (timeseries.h).
  uint64_t lookups = 0;
  uint64_t hits = 0;
  for (const auto& [name, state] : views_) {
    const SummaryDbStats s = state.summary->stats();
    lookups += s.lookups;
    hits += s.hits;
  }
  p.values["summary.lookups"] = static_cast<double>(lookups);
  p.values["summary.hits"] = static_cast<double>(hits);
  uint64_t reads = 0;
  uint64_t writes = 0;
  double sim_ms = 0;
  for (const std::string& dev : {tape_device_, disk_device_}) {
    Result<SimulatedDevice*> device = storage_->GetDevice(dev);
    if (!device.ok()) continue;
    const IoStats& io = device.value()->stats();
    reads += io.block_reads;
    writes += io.block_writes;
    sim_ms += io.simulated_ms;
  }
  p.values["io.bytes_read"] =
      static_cast<double>(reads) * static_cast<double>(kPageSize);
  p.values["io.bytes_written"] =
      static_cast<double>(writes) * static_cast<double>(kPageSize);
  p.values["io.simulated_ms"] = sim_ms;
  if (wal_ != nullptr) {
    const WalStats ws = wal_->stats();
    p.values["wal.bytes_appended"] = static_cast<double>(ws.bytes_appended);
    p.values["wal.commits"] = static_cast<double>(ws.records_appended);
  }
  return p;
}

void StatisticalDbms::FoldPoolStats(const ThreadPool& pool) {
  ThreadPoolStats s = pool.stats();
  obs_pool_submitted_->Inc(s.submitted);
  obs_pool_executed_->Inc(s.executed);
  obs_pool_rejected_->Inc(s.rejected);
  obs_pool_queue_max_->MaxOf(double(s.max_queue_depth));
  obs_pool_task_ms_total_->Add(s.total_task_ms);
}

Status StatisticalDbms::LoadRawDataSet(const std::string& name,
                                       const Table& data,
                                       std::string description) {
  STATDB_RETURN_IF_ERROR(GuardMutable());
  if (raw_tables_.contains(name)) {
    return AlreadyExistsError("raw data set already loaded: " + name);
  }
  STATDB_ASSIGN_OR_RETURN(BufferPool * pool, storage_->GetPool(tape_device_));
  auto stored = std::make_unique<StoredRowTable>(data.schema(), pool);
  STATDB_RETURN_IF_ERROR(stored->LoadFrom(data));
  // The raw database is archival: write it through and drop it from the
  // cache so later materializations pay real tape I/O (§2.3's premise).
  STATDB_RETURN_IF_ERROR(pool->FlushAll());
  STATDB_RETURN_IF_ERROR(pool->Reset());
  raw_tables_.emplace(name, std::move(stored));
  DataSetInfo info;
  info.name = name;
  info.schema = data.schema();
  info.location = DataSetLocation::kTape;
  info.description = std::move(description);
  info.approx_rows = data.num_rows();
  STATDB_RETURN_IF_ERROR(catalog_.RegisterDataSet(std::move(info)));
  // The tape pages are already forced (FlushAll above); this commit makes
  // the catalog/table registration itself durable.
  return CommitDurable(/*attr_hint=*/"", /*force=*/true);
}

Result<Table> StatisticalDbms::ReadRawFromTape(const std::string& dataset) {
  auto it = raw_tables_.find(dataset);
  if (it == raw_tables_.end()) {
    return NotFoundError("no raw data set named " + dataset);
  }
  STATDB_ASSIGN_OR_RETURN(Table out, it->second->ReadAll());
  // Tape is streamed, not cached: drop the pages so the next
  // materialization pays full tape I/O again (a tape drive has no
  // random-access page cache to keep warm).
  STATDB_ASSIGN_OR_RETURN(BufferPool * pool, storage_->GetPool(tape_device_));
  STATDB_RETURN_IF_ERROR(pool->FlushAll());
  STATDB_RETURN_IF_ERROR(pool->Reset());
  return out;
}

Result<ViewCreation> StatisticalDbms::CreateView(const std::string& name,
                                                 const ViewDefinition& def,
                                                 MaintenancePolicy policy) {
  std::string canonical = def.Canonical();
  Result<std::string> existing = mdb_.FindViewByDefinition(canonical);
  if (existing.ok()) {
    // §2.3: never re-materialize a view identical to an existing one.
    return ViewCreation{existing.value(), /*reused=*/true};
  }
  STATDB_RETURN_IF_ERROR(GuardMutable());
  if (views_.contains(name)) {
    return AlreadyExistsError("view name already in use: " + name);
  }
  // kCreate captures nothing (there is no pre-image); the scope
  // serializes against other writers and registers the new view with
  // the session routing table at publish. On failure the auto-publish
  // carries a null pointer, which registers nothing. The reuse path
  // above takes no scope: nothing mutates, and re-publishing an
  // untouched view would needlessly bump every pinned route.
  session::MutationScope scope(sessions_.get(),
                               session::MutationScope::Kind::kCreate, name,
                               nullptr);
  if (!scope.ok()) return scope.status();
  STATDB_ASSIGN_OR_RETURN(Table raw, ReadRawFromTape(def.source));
  STATDB_ASSIGN_OR_RETURN(Table materialized, def.Materialize(raw));
  STATDB_ASSIGN_OR_RETURN(BufferPool * pool, storage_->GetPool(disk_device_));
  ViewState state;
  state.view = std::make_unique<ConcreteView>(name, materialized.schema(),
                                              pool);
  STATDB_RETURN_IF_ERROR(state.view->LoadFrom(materialized));
  // Build RLE sidecars over the freshly loaded columns (best-effort;
  // columns that would not compress keep none). Before the flush so the
  // sidecar pages persist with the view's.
  STATDB_RETURN_IF_ERROR(state.view->CompressColumns());
  // Persist the freshly materialized view (the buffer pool stays warm).
  // Under durability the flush must wait for the commit record: the
  // commit below appends the dirty images to the WAL first and flushes
  // itself (force-at-commit).
  if (wal_ == nullptr) {
    STATDB_RETURN_IF_ERROR(pool->FlushAll());
  }
  STATDB_ASSIGN_OR_RETURN(state.summary, SummaryDatabase::Create(pool));
  STATDB_RETURN_IF_ERROR(mdb_.RegisterView(name, canonical, policy));
  DataSetInfo info;
  info.name = name;
  info.schema = materialized.schema();
  info.location = DataSetLocation::kDisk;
  info.description = "concrete view: " + canonical;
  info.approx_rows = materialized.num_rows();
  STATDB_RETURN_IF_ERROR(catalog_.RegisterDataSet(std::move(info)));
  auto [vit, inserted] = views_.emplace(name, std::move(state));
  scope.Publish(vit->second.view.get());
  STATDB_RETURN_IF_ERROR(CommitDurable(/*attr_hint=*/"", /*force=*/true));
  return ViewCreation{name, /*reused=*/false};
}

Result<StatisticalDbms::ViewState*> StatisticalDbms::GetState(
    const std::string& view) {
  auto it = views_.find(view);
  if (it == views_.end()) {
    return NotFoundError("no view named " + view);
  }
  return &it->second;
}

Result<ConcreteView*> StatisticalDbms::GetView(const std::string& name) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(name));
  return state->view.get();
}

Status StatisticalDbms::DropView(const std::string& name) {
  STATDB_RETURN_IF_ERROR(GuardMutable());
  auto vit = views_.find(name);
  if (vit == views_.end()) {
    return NotFoundError("no view named " + name);
  }
  // Pinned sessions keep reading the captures installed here; sessions
  // opened after the drop see NOT_FOUND. The erase below destroys the
  // ConcreteView, so the grace period in the scope's Begin is what makes
  // it safe — and the drop must publish before this function returns
  // (the destructor auto-publishes the drop on error paths too: by then
  // mdb_/catalog state is partially gone, so "dropped" is the only
  // truthful route).
  session::MutationScope scope(sessions_.get(),
                               session::MutationScope::Kind::kDrop, name,
                               vit->second.view.get());
  if (!scope.ok()) return scope.status();
  STATDB_RETURN_IF_ERROR(mdb_.DropView(name));
  STATDB_RETURN_IF_ERROR(catalog_.UnregisterDataSet(name));
  views_.erase(name);
  // Policy state is keyed by "view.attr": a later view reusing the name
  // must start from the default strategy, not inherit hysteresis streaks.
  delta_policy_.EraseView(name);
  // Metadata-only mutation: no pages dirtied, but the drop must reach the
  // log or recovery would resurrect the view.
  return CommitDurable(/*attr_hint=*/"", /*force=*/true);
}

Result<Table> StatisticalDbms::RematerializeFromTape(
    const std::string& view_name) {
  STATDB_ASSIGN_OR_RETURN(const ViewRecord* rec, mdb_.GetView(view_name));
  (void)rec;
  // The typed definition is not persisted; benchmarks re-supply it. Here
  // we re-read the raw source of the existing view by snapshotting its
  // catalog entry's source. For simplicity the canonical definition
  // encodes "FROM <source>..." — parse the source token.
  const std::string& canonical = rec->canonical_definition;
  if (canonical.rfind("FROM ", 0) != 0) {
    return InternalError("unparseable view definition");
  }
  size_t end = canonical.find(' ', 5);
  std::string source = canonical.substr(
      5, end == std::string::npos ? std::string::npos : end - 5);
  return ReadRawFromTape(source);
}

Result<SummaryResult> StatisticalDbms::ComputeOnView(
    ViewState* state, const std::string& function,
    const std::string& attribute, const FunctionParams& params) {
  STATDB_ASSIGN_OR_RETURN(std::vector<double> data,
                          state->view->ReadNumericColumn(attribute));
  return mdb_.functions().Compute(function, data, params);
}

Status StatisticalDbms::CheckQueryable(const Schema& schema,
                                       const std::string& function,
                                       const std::string& attribute) {
  // Meta-data gate (§3.2): no medians of AGE_GROUP codes.
  STATDB_ASSIGN_OR_RETURN(size_t attr_idx, schema.IndexOf(attribute));
  const Attribute& attr = schema.attr(attr_idx);
  bool numeric = attr.type == DataType::kInt64 ||
                 attr.type == DataType::kDouble;
  if (!numeric) {
    return InvalidArgumentError("attribute " + attribute +
                                " is not numeric");
  }
  if ((!attr.summarizable || attr.kind == AttributeKind::kCategory) &&
      !MeaningfulOnCategories(function)) {
    return InvalidArgumentError(
        "summary statistic '" + function +
        "' is not meaningful for category attribute " + attribute);
  }
  return Status::OK();
}

Result<bool> StatisticalDbms::TryAnswerWithoutComputing(
    const std::string& view, ViewState* state, const SummaryKey& key,
    const std::string& function, const std::string& attribute,
    const FunctionParams& params, const QueryOptions& opts,
    QueryAnswer* answer, QueryTrace* trace) {
  // Flush barrier (§16): a cached entry with pending deltas is behind
  // the data without being marked stale, so an exact serve must apply
  // the batch first. allow_stale accepts it as-is — the analyst already
  // opted into approximate answers — and the staleness-gate arithmetic
  // below stays on entry versions, which flushing freshens.
  if (!opts.allow_stale) {
    for (const std::string& attr : key.attributes) {
      if (state->deltas.HasPending(attr)) {
        STATDB_RETURN_IF_ERROR(FlushAttributeDeltas(view, state, attr));
      }
    }
  }
  Result<SummaryEntry> cached = [&] {
    ScopedSpan span(trace, SpanKind::kCacheProbe);
    return state->summary->Lookup(key);
  }();
  if (cached.ok() && !cached.value().stale) {
    ++state->traffic.cache_hits;
    if (flight_.enabled()) {
      flight_.Record(causal::Current(), FlightEventKind::kCacheHit,
                     function + "(" + attribute + ")");
    }
    *answer = QueryAnswer{cached.value().result, AnswerSource::kCacheHit,
                          true, ""};
    return true;
  }
  if (cached.ok() && cached.value().stale) {
    ScopedSpan span(trace, SpanKind::kStalenessGate);
    if (opts.allow_stale ||
        (opts.max_version_lag > 0 &&
         state->view->version() - cached.value().view_version <=
             opts.max_version_lag)) {
      ++state->traffic.stale_hits;
      state->summary->NoteServedStale();
      if (flight_.enabled()) {
        flight_.Record(causal::Current(), FlightEventKind::kStaleServe,
                       function + "(" + attribute + ")",
                       int64_t(state->view->version() -
                               cached.value().view_version));
      }
      *answer = QueryAnswer{cached.value().result,
                            AnswerSource::kStaleCacheHit, false,
                            "stale cached value"};
      return true;
    }
  }
  if (flight_.enabled()) {
    flight_.Record(causal::Current(), FlightEventKind::kCacheMiss,
                   function + "(" + attribute + ")");
  }

  if (opts.allow_inference) {
    ScopedSpan span(trace, SpanKind::kInference);
    Result<InferenceResult> inferred =
        InferFromSummaries(state->summary.get(), function, attribute,
                           params);
    if (inferred.ok() &&
        (inferred.value().exact || opts.allow_estimates)) {
      ++state->traffic.inferred;
      *answer = QueryAnswer{inferred.value().result, AnswerSource::kInferred,
                            inferred.value().exact,
                            inferred.value().derivation};
      return true;
    }
  }
  return false;
}

Status StatisticalDbms::CacheComputedResult(const std::string& view,
                                            ViewState* state,
                                            const SummaryKey& key,
                                            const SummaryResult& result,
                                            const std::vector<double>& data,
                                            QueryTrace* trace) {
  {
    ScopedSpan span(trace, SpanKind::kSummaryInsert);
    STATDB_RETURN_IF_ERROR(
        state->summary->Insert(key, result, state->view->version()));
  }
  // Arm an incremental rule for this entry when one exists and the
  // view maintains incrementally.
  STATDB_ASSIGN_OR_RETURN(const ViewRecord* rec, mdb_.GetView(view));
  if (rec->policy == MaintenancePolicy::kIncremental) {
    ScopedSpan span(trace, SpanKind::kMaintainerArm);
    span.SetRows(data.size());
    // Arming routes through the delta engine (R7: dbms never drives
    // maintainer arms directly), so the flush path owns every
    // maintainer lifecycle transition.
    if (delta::ArmMaintainer(mdb_, key, data, &state->maintainers) &&
        flight_.enabled()) {
      flight_.Record(causal::Current(), FlightEventKind::kMaintainerArm,
                     QueryLabel(view, key.function,
                                key.attributes.empty()
                                    ? std::string()
                                    : key.attributes.front()),
                     /*a=*/0, int64_t(data.size()));
    }
  }
  return Status::OK();
}

Result<QueryAnswer> StatisticalDbms::Query(const std::string& view,
                                           const std::string& function,
                                           const std::string& attribute,
                                           const FunctionParams& params,
                                           const QueryOptions& opts) {
  causal::ScopedTraceContext scope(causal::Mint());
  TraceTimer timer;
  std::optional<QueryTrace> trace;
  if (WantTrace()) {
    trace.emplace();
    trace->SetLabel("query", view, function, attribute);
    trace->SetContext(scope.ctx().trace_id, scope.ctx().session_id,
                      scope.ctx().query_seq);
  }
  QueryTrace* tr = trace ? &*trace : nullptr;
  if (flight_.enabled()) {
    flight_.Record(scope.ctx(), FlightEventKind::kQueryBegin,
                   QueryLabel(view, function, attribute));
  }
  Result<QueryAnswer> r =
      QueryImpl(view, function, attribute, params, opts, tr);
  TraceOutcome outcome = r.ok() ? OutcomeOfSource(r.value().source)
                                : TraceOutcome::kError;
  EmitQueryObs(timer, tr, outcome, "query");
  NoteQueryOutcome(scope.ctx(), view, function, attribute, outcome,
                   timer.ElapsedMs());
  if (r.ok()) CommitAfterQuery(attribute);
  return r;
}

Result<QueryAnswer> StatisticalDbms::QueryImpl(const std::string& view,
                                               const std::string& function,
                                               const std::string& attribute,
                                               const FunctionParams& params,
                                               const QueryOptions& opts,
                                               QueryTrace* trace) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  ++state->traffic.queries;
  ++state->traffic.attribute_accesses[attribute];

  STATDB_RETURN_IF_ERROR(
      CheckQueryable(state->view->schema(), function, attribute));

  SummaryKey key{function, {attribute}, params.Encode()};
  QueryAnswer answer;
  STATDB_ASSIGN_OR_RETURN(
      bool answered,
      TryAnswerWithoutComputing(view, state, key, function, attribute,
                                params, opts, &answer, trace));
  if (answered) return answer;

  // Compute path: flush unconditionally (even under allow_stale, which
  // only relaxes *serves*). A maintainer armed from the current column
  // must never later receive buffered deltas the column already
  // reflects — that would double-apply them.
  if (state->deltas.HasPending(attribute)) {
    STATDB_RETURN_IF_ERROR(FlushAttributeDeltas(view, state, attribute));
  }

  // Planner choice (DESIGN.md §14): answer from the RLE sidecar in the
  // compressed domain when the function finishes from mergeable partials
  // and nothing downstream needs the materialized column. Arming an
  // incremental maintainer does (it initializes from the full column), so
  // that combination takes the materialized path.
  STATDB_ASSIGN_OR_RETURN(const ViewRecord* rec, mdb_.GetView(view));
  const bool arm_maintainers =
      opts.cache_result && rec->policy == MaintenancePolicy::kIncremental;
  // Shared ref, not the raw pointer: a concurrent WriteCell/Append
  // detaches the sidecar, and this scan's reference must keep the
  // retired pages alive until it finishes.
  const std::shared_ptr<const CompressedColumnFile> sidecar =
      state->view->CompressedSidecarRef(attribute);
  if (compressed_scan_enabled_ && sidecar != nullptr &&
      IsMergeable(function) && !arm_maintainers) {
    ColumnScanResult scan;
    {
      ScopedSpan span(trace, SpanKind::kCompressedScan);
      STATDB_ASSIGN_OR_RETURN(
          scan, ScanCompressedColumn(*sidecar,
                                     RunKindOf(state->view->schema(),
                                               *state->view->schema()
                                                    .IndexOf(attribute)),
                                     NeedsValueCounts(function),
                                     /*pool=*/nullptr));
      span.SetRows(sidecar->size());
      span.SetPages(sidecar->page_count());
    }
    SummaryResult result;
    {
      ScopedSpan span(trace, SpanKind::kCompute);
      span.SetRows(scan.desc.count);
      STATDB_ASSIGN_OR_RETURN(result,
                              FinishMergeable(function, params, scan));
    }
    obs_scan_compressed_->Inc();
    ++state->traffic.computed;
    if (opts.cache_result) {
      // No maintainer to arm (excluded above), so the column data the
      // cache tail would feed one is never needed.
      STATDB_RETURN_IF_ERROR(
          CacheComputedResult(view, state, key, result, {}, trace));
    }
    return QueryAnswer{std::move(result), AnswerSource::kComputed, true, ""};
  }

  std::vector<double> data;
  {
    ScopedSpan span(trace, SpanKind::kScan);
    STATDB_ASSIGN_OR_RETURN(data,
                            state->view->ReadNumericColumn(attribute));
    span.SetRowsPaged(data.size(), ColumnFile::kCellsPerPage);
  }
  SummaryResult result;
  {
    ScopedSpan span(trace, SpanKind::kCompute);
    span.SetRows(data.size());
    STATDB_ASSIGN_OR_RETURN(result,
                            mdb_.functions().Compute(function, data, params));
  }
  obs_scan_materialized_->Inc();
  ++state->traffic.computed;
  if (opts.cache_result) {
    STATDB_RETURN_IF_ERROR(
        CacheComputedResult(view, state, key, result, data, trace));
  }
  return QueryAnswer{std::move(result), AnswerSource::kComputed, true, ""};
}

Result<QueryAnswer> StatisticalDbms::QueryParallel(
    const std::string& view, const std::string& function,
    const std::string& attribute, const FunctionParams& params,
    const QueryOptions& opts, size_t workers) {
  causal::ScopedTraceContext scope(causal::Mint());
  TraceTimer timer;
  std::optional<QueryTrace> trace;
  if (WantTrace()) {
    trace.emplace();
    trace->SetLabel("queryp", view, function, attribute);
    trace->SetContext(scope.ctx().trace_id, scope.ctx().session_id,
                      scope.ctx().query_seq);
  }
  QueryTrace* tr = trace ? &*trace : nullptr;
  if (flight_.enabled()) {
    flight_.Record(scope.ctx(), FlightEventKind::kQueryBegin,
                   QueryLabel(view, function, attribute));
  }
  std::vector<QueryRequest> requests = {{function, attribute, params}};
  Result<std::vector<QueryAnswer>> answers =
      QueryManyImpl(view, requests, opts, workers, tr);
  if (!answers.ok()) {
    EmitQueryObs(timer, tr, TraceOutcome::kError, "query_parallel");
    NoteQueryOutcome(scope.ctx(), view, function, attribute,
                     TraceOutcome::kError, timer.ElapsedMs());
    return answers.status();
  }
  TraceOutcome outcome = OutcomeOfSource(answers.value()[0].source);
  EmitQueryObs(timer, tr, outcome, "query_parallel");
  NoteQueryOutcome(scope.ctx(), view, function, attribute, outcome,
                   timer.ElapsedMs());
  CommitAfterQuery(attribute);
  return std::move(answers.value()[0]);
}

Result<QueryAnswer> StatisticalDbms::QueryFiltered(
    const std::string& view, const std::string& function,
    const std::string& attribute, const FilterPredicate& pred,
    const FunctionParams& params) {
  causal::ScopedTraceContext scope(causal::Mint());
  TraceTimer timer;
  std::optional<QueryTrace> trace;
  if (WantTrace()) {
    trace.emplace();
    trace->SetLabel("queryfiltered", view, function, attribute);
    trace->SetContext(scope.ctx().trace_id, scope.ctx().session_id,
                      scope.ctx().query_seq);
  }
  QueryTrace* tr = trace ? &*trace : nullptr;
  if (flight_.enabled()) {
    flight_.Record(scope.ctx(), FlightEventKind::kQueryBegin,
                   QueryLabel(view, function, attribute));
  }
  Result<QueryAnswer> r =
      QueryFilteredImpl(view, function, attribute, pred, params, tr);
  TraceOutcome outcome =
      r.ok() ? TraceOutcome::kComputed : TraceOutcome::kError;
  EmitQueryObs(timer, tr, outcome, "query_filtered");
  NoteQueryOutcome(scope.ctx(), view, function, attribute, outcome,
                   timer.ElapsedMs());
  return r;
}

Result<QueryAnswer> StatisticalDbms::QueryFilteredImpl(
    const std::string& view, const std::string& function,
    const std::string& attribute, const FilterPredicate& pred,
    const FunctionParams& params, QueryTrace* trace) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  ++state->traffic.queries;
  ++state->traffic.attribute_accesses[attribute];
  const Schema& schema = state->view->schema();
  STATDB_RETURN_IF_ERROR(CheckQueryable(schema, function, attribute));
  STATDB_ASSIGN_OR_RETURN(size_t attr_idx, schema.IndexOf(attribute));

  // Coerce predicate endpoints like index probes, then compare as
  // doubles — both paths below apply the same RunPredicate semantics.
  simd::RunPredicate rp;
  switch (pred.kind) {
    case FilterPredicate::Kind::kAll:
      rp.kind = simd::RunPredicate::Kind::kAll;
      break;
    case FilterPredicate::Kind::kEqual: {
      STATDB_ASSIGN_OR_RETURN(Value probe,
                              CoerceToAttribute(schema, attribute,
                                                pred.equal));
      STATDB_ASSIGN_OR_RETURN(rp.equal, probe.ToDouble());
      rp.kind = simd::RunPredicate::Kind::kEqual;
      break;
    }
    case FilterPredicate::Kind::kRange: {
      STATDB_ASSIGN_OR_RETURN(Value plo,
                              CoerceToAttribute(schema, attribute, pred.lo));
      STATDB_ASSIGN_OR_RETURN(Value phi,
                              CoerceToAttribute(schema, attribute, pred.hi));
      STATDB_ASSIGN_OR_RETURN(rp.lo, plo.ToDouble());
      STATDB_ASSIGN_OR_RETURN(rp.hi, phi.ToDouble());
      rp.kind = simd::RunPredicate::Kind::kRange;
      break;
    }
  }

  // Shared ref, not the raw pointer: a concurrent WriteCell/Append
  // detaches the sidecar, and this scan's reference must keep the
  // retired pages alive until it finishes.
  const std::shared_ptr<const CompressedColumnFile> sidecar =
      state->view->CompressedSidecarRef(attribute);
  if (compressed_scan_enabled_ && sidecar != nullptr &&
      IsMergeable(function)) {
    // Pushdown: predicate decided once per run, no row materialized.
    FilteredScanResult filtered;
    {
      ScopedSpan span(trace, SpanKind::kCompressedScan);
      STATDB_ASSIGN_OR_RETURN(
          filtered,
          ScanCompressedFiltered(*sidecar, RunKindOf(schema, attr_idx), rp,
                                 NeedsValueCounts(function),
                                 /*pool=*/nullptr));
      span.SetRows(filtered.rows);
      span.SetPages(sidecar->page_count());
    }
    ColumnScanResult scan;
    scan.desc = filtered.desc;
    scan.counts = std::move(filtered.counts);
    SummaryResult result;
    {
      ScopedSpan span(trace, SpanKind::kCompute);
      span.SetRows(scan.desc.count);
      STATDB_ASSIGN_OR_RETURN(result,
                              FinishMergeable(function, params, scan));
    }
    obs_scan_compressed_->Inc();
    ++state->traffic.computed;
    return QueryAnswer{std::move(result), AnswerSource::kComputed, true,
                       "compressed-domain pushdown"};
  }

  // Filter-then-materialize: read the column, keep matching cells, run
  // the registry function on the kept values.
  std::vector<double> data;
  {
    ScopedSpan span(trace, SpanKind::kScan);
    STATDB_ASSIGN_OR_RETURN(data,
                            state->view->ReadNumericColumn(attribute));
    span.SetRowsPaged(data.size(), ColumnFile::kCellsPerPage);
  }
  std::vector<double> kept;
  kept.reserve(data.size());
  for (double x : data) {
    if (rp.Matches(x)) kept.push_back(x);
  }
  SummaryResult result;
  {
    ScopedSpan span(trace, SpanKind::kCompute);
    span.SetRows(kept.size());
    STATDB_ASSIGN_OR_RETURN(result,
                            mdb_.functions().Compute(function, kept, params));
  }
  obs_scan_materialized_->Inc();
  ++state->traffic.computed;
  return QueryAnswer{std::move(result), AnswerSource::kComputed, true, ""};
}

Result<std::vector<QueryAnswer>> StatisticalDbms::QueryMany(
    const std::string& view, const std::vector<QueryRequest>& requests,
    const QueryOptions& opts, size_t workers) {
  causal::ScopedTraceContext scope(causal::Mint());
  TraceTimer timer;
  std::optional<QueryTrace> trace;
  if (WantTrace()) {
    trace.emplace();
    trace->SetLabel("querymany", view,
                    "[" + std::to_string(requests.size()) + " requests]",
                    "");
    trace->SetContext(scope.ctx().trace_id, scope.ctx().session_id,
                      scope.ctx().query_seq);
  }
  QueryTrace* tr = trace ? &*trace : nullptr;
  if (flight_.enabled()) {
    for (size_t i = 0; i < requests.size(); ++i) {
      flight_.Record(scope.ctx(), FlightEventKind::kQueryBegin,
                     QueryLabel(view, requests[i].function,
                                requests[i].attribute),
                     static_cast<int64_t>(i));
    }
  }
  Result<std::vector<QueryAnswer>> r =
      QueryManyImpl(view, requests, opts, workers, tr);
  EmitQueryObs(timer, tr,
               r.ok() ? OutcomeOfBatch(r.value()) : TraceOutcome::kError,
               "query_many");
  // Per-request provenance for the profiler and the flight ring; the
  // batch's wall time is split evenly (per-request time is not observable
  // once scans are shared across requests).
  double per_request_ms =
      requests.empty() ? 0 : timer.ElapsedMs() / double(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    NoteQueryOutcome(scope.ctx(), view, requests[i].function,
                     requests[i].attribute,
                     r.ok() ? OutcomeOfSource(r.value()[i].source)
                            : TraceOutcome::kError,
                     per_request_ms);
  }
  if (r.ok()) {
    CommitAfterQuery(requests.empty() ? "" : requests.front().attribute);
  }
  return r;
}

Result<std::vector<QueryAnswer>> StatisticalDbms::QueryManyImpl(
    const std::string& view, const std::vector<QueryRequest>& requests,
    const QueryOptions& opts, size_t workers, QueryTrace* trace) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  STATDB_ASSIGN_OR_RETURN(const ViewRecord* rec, mdb_.GetView(view));
  // Incremental maintainers initialize from the full column, so the scan
  // must gather it even when every requested statistic is mergeable.
  const bool arm_maintainers =
      opts.cache_result && rec->policy == MaintenancePolicy::kIncremental;

  std::vector<QueryAnswer> answers(requests.size());
  // Encoded key -> index of the request that owns the computation; later
  // duplicates alias that slot instead of recomputing or re-inserting.
  std::map<std::string, size_t> primary;
  constexpr size_t kNoAlias = static_cast<size_t>(-1);
  std::vector<size_t> alias_of(requests.size(), kNoAlias);
  // Attributes needing a scan, in first-appearance order, with the
  // indices of the unique requests each scan must answer.
  std::vector<std::string> attr_order;
  std::map<std::string, std::vector<size_t>> by_attr;

  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& r = requests[i];
    ++state->traffic.queries;
    ++state->traffic.attribute_accesses[r.attribute];
    STATDB_RETURN_IF_ERROR(
        CheckQueryable(state->view->schema(), r.function, r.attribute));
    SummaryKey key{r.function, {r.attribute}, r.params.Encode()};
    auto dup = primary.find(key.Encode());
    if (dup != primary.end()) {
      alias_of[i] = dup->second;
      continue;
    }
    primary.emplace(key.Encode(), i);
    STATDB_ASSIGN_OR_RETURN(
        bool answered,
        TryAnswerWithoutComputing(view, state, key, r.function, r.attribute,
                                  r.params, opts, &answers[i], trace));
    if (answered) continue;
    if (!by_attr.contains(r.attribute)) attr_order.push_back(r.attribute);
    by_attr[r.attribute].push_back(i);
  }

  // Compute paths flush unconditionally (see QueryImpl): a maintainer
  // armed from the scanned column must not see those deltas again.
  for (const std::string& attr : attr_order) {
    if (state->deltas.HasPending(attr)) {
      STATDB_RETURN_IF_ERROR(FlushAttributeDeltas(view, state, attr));
    }
  }

  if (!attr_order.empty()) {
    std::optional<ThreadPool> pool;
    if (workers > 1) {
      pool.emplace(workers);
      pool->set_task_latency_sink(obs_pool_task_ms_);
    }
    for (const std::string& attr : attr_order) {
      const std::vector<size_t>& idxs = by_attr[attr];
      ColumnScanSpec spec;
      for (size_t i : idxs) {
        const std::string& fn = requests[i].function;
        if (NeedsValueCounts(fn)) spec.want_counts = true;
        if (!IsMergeable(fn)) spec.keep_values = true;
      }
      if (arm_maintainers) spec.keep_values = true;
      spec.time_chunks = trace != nullptr;
      const ConcreteView* cv = state->view.get();
      // Planner choice (DESIGN.md §14): the whole attribute group goes
      // compressed-domain when every statistic finishes from mergeable
      // partials (no keep_values) and an RLE sidecar is attached.
      // Shared ref: keeps the sidecar alive across the scan even if a
      // concurrent writer detaches it (see CompressedSidecarRef).
      const std::shared_ptr<const CompressedColumnFile> sidecar =
          cv->CompressedSidecarRef(attr);
      ColumnScanResult scan;
      if (compressed_scan_enabled_ && sidecar != nullptr &&
          !spec.keep_values) {
        ScopedSpan span(trace, SpanKind::kCompressedScan);
        STATDB_ASSIGN_OR_RETURN(
            scan, ScanCompressedColumn(
                      *sidecar,
                      RunKindOf(cv->schema(), *cv->schema().IndexOf(attr)),
                      spec.want_counts, pool ? &*pool : nullptr));
        span.SetRows(sidecar->size());
        span.SetPages(sidecar->page_count());
        obs_scan_compressed_->Inc();
      } else {
        ColumnRangeReader reader = [cv, attr](uint64_t begin, uint64_t end) {
          return cv->ReadNumericRange(attr, begin, end);
        };
        {
          ScopedSpan span(trace, SpanKind::kScan);
          STATDB_ASSIGN_OR_RETURN(
              scan,
              ParallelScanColumn(cv->num_rows(), ColumnFile::kCellsPerPage,
                                 reader, spec, pool ? &*pool : nullptr));
          span.SetRowsPaged(scan.desc.count, ColumnFile::kCellsPerPage);
        }
        obs_scan_materialized_->Inc();
        if (trace != nullptr) {
          for (size_t c = 0; c < scan.chunk_stats.size(); ++c) {
            const ChunkScanStat& cs = scan.chunk_stats[c];
            trace->Add(SpanKind::kScanChunk, cs.wall_ms, cs.rows,
                       PagesOf(cs.rows), int32_t(c));
          }
        }
      }
      for (size_t i : idxs) {
        const QueryRequest& r = requests[i];
        SummaryResult result;
        {
          ScopedSpan span(trace, SpanKind::kCompute);
          span.SetRows(scan.desc.count);
          if (IsMergeable(r.function)) {
            STATDB_ASSIGN_OR_RETURN(
                result, FinishMergeable(r.function, r.params, scan));
          } else {
            // Order-dependent / unregistered functions run the serial
            // computation on the gathered column (bit-identical to the
            // serial read, so their answers are bit-identical too).
            STATDB_ASSIGN_OR_RETURN(
                result,
                mdb_.functions().Compute(r.function, scan.values, r.params));
          }
        }
        ++state->traffic.computed;
        if (opts.cache_result) {
          SummaryKey key{r.function, {r.attribute}, r.params.Encode()};
          STATDB_RETURN_IF_ERROR(CacheComputedResult(view, state, key,
                                                     result, scan.values,
                                                     trace));
        }
        answers[i] = QueryAnswer{std::move(result), AnswerSource::kComputed,
                                 true, ""};
      }
    }
    if (pool) {
      // The scans joined at their barriers, but a worker bumps `executed`
      // only after the task's future resolves — Quiesce() joins the
      // workers so the counters are exact before folding.
      pool->Quiesce();
      FoldPoolStats(*pool);
    }
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    if (alias_of[i] != kNoAlias) answers[i] = answers[alias_of[i]];
  }
  return answers;
}

Result<QueryAnswer> StatisticalDbms::QueryBivariateParallel(
    const std::string& view, const std::string& function,
    const std::string& attr_a, const std::string& attr_b,
    const QueryOptions& opts, size_t workers) {
  if (function == "crosstab" || function == "chi2_independence") {
    // Contingency tables carry no mergeable partial state here; forward
    // *before* recording anything so the serial wrapper owns the whole
    // begin/end pair — the forwarding path must never emit a second
    // begin (or an unmatched one, the bug this comment memorializes).
    return QueryBivariate(view, function, attr_a, attr_b, opts);
  }
  causal::ScopedTraceContext scope(causal::Mint());
  TraceTimer timer;
  std::optional<QueryTrace> trace;
  if (WantTrace()) {
    trace.emplace();
    trace->SetLabel("bivariate", view, function, attr_a + "," + attr_b);
    trace->SetContext(scope.ctx().trace_id, scope.ctx().session_id,
                      scope.ctx().query_seq);
  }
  QueryTrace* tr = trace ? &*trace : nullptr;
  if (flight_.enabled()) {
    flight_.Record(scope.ctx(), FlightEventKind::kQueryBegin,
                   QueryLabel(view, function, attr_a + "," + attr_b));
  }
  Result<QueryAnswer> r =
      QueryBivariateParallelImpl(view, function, attr_a, attr_b, opts,
                                 workers, tr);
  TraceOutcome outcome = r.ok() ? OutcomeOfSource(r.value().source)
                                : TraceOutcome::kError;
  EmitQueryObs(timer, tr, outcome, "bivariate");
  NoteQueryOutcome(scope.ctx(), view, function, attr_a + "," + attr_b,
                   outcome, timer.ElapsedMs());
  return r;
}

Result<QueryAnswer> StatisticalDbms::QueryBivariateParallelImpl(
    const std::string& view, const std::string& function,
    const std::string& attr_a, const std::string& attr_b,
    const QueryOptions& opts, size_t workers, QueryTrace* trace) {
  if (function != "correlation" && function != "covariance" &&
      function != "regression") {
    return InvalidArgumentError("unknown bivariate function " + function);
  }
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  ++state->traffic.queries;
  ++state->traffic.attribute_accesses[attr_a];
  ++state->traffic.attribute_accesses[attr_b];
  SummaryKey key{function, {attr_a, attr_b}, ""};

  // Flush barrier: a cached bivariate entry may have pending deltas on
  // either side; fresh serves must observe the post-flush summary.
  if (!opts.allow_stale) {
    for (const std::string* attr : {&attr_a, &attr_b}) {
      if (state->deltas.HasPending(*attr)) {
        STATDB_RETURN_IF_ERROR(FlushAttributeDeltas(view, state, *attr));
      }
    }
  }

  Result<SummaryEntry> cached = [&] {
    ScopedSpan span(trace, SpanKind::kCacheProbe);
    return state->summary->Lookup(key);
  }();
  if (cached.ok() && !cached.value().stale) {
    ++state->traffic.cache_hits;
    return QueryAnswer{cached.value().result, AnswerSource::kCacheHit, true,
                       ""};
  }
  if (cached.ok() && cached.value().stale) {
    ScopedSpan span(trace, SpanKind::kStalenessGate);
    if (opts.allow_stale ||
        (opts.max_version_lag > 0 &&
         state->view->version() - cached.value().view_version <=
             opts.max_version_lag)) {
      ++state->traffic.stale_hits;
      state->summary->NoteServedStale();
      return QueryAnswer{cached.value().result, AnswerSource::kStaleCacheHit,
                         false, "stale cached value"};
    }
  }

  // Compute paths flush unconditionally (even under allow_stale): the
  // comoment maintainer armed below is seeded from the scanned pairs and
  // must never see those buffered deltas again.
  for (const std::string* attr : {&attr_a, &attr_b}) {
    if (state->deltas.HasPending(*attr)) {
      STATDB_RETURN_IF_ERROR(FlushAttributeDeltas(view, state, *attr));
    }
  }

  const ConcreteView* cv = state->view.get();
  PairRangeReader reader = [cv, attr_a, attr_b](
                               uint64_t begin, uint64_t end,
                               std::vector<double>* xs,
                               std::vector<double>* ys) {
    return cv->ReadNumericPairsRange(attr_a, attr_b, begin, end, xs, ys);
  };
  std::optional<ThreadPool> pool;
  if (workers > 1) {
    pool.emplace(workers);
    pool->set_task_latency_sink(obs_pool_task_ms_);
  }
  ComomentStats cs;
  {
    ScopedSpan span(trace, SpanKind::kScan);
    STATDB_ASSIGN_OR_RETURN(
        cs,
        ParallelScanPairs(cv->num_rows(), ColumnFile::kCellsPerPage, reader,
                          pool ? &*pool : nullptr));
    // Two columns read per row-pair: twice the pages of one column.
    span.SetRows(cs.n);
    span.SetPages(2 * PagesOf(cv->num_rows()));
  }
  SummaryResult result;
  {
    ScopedSpan span(trace, SpanKind::kCompute);
    span.SetRows(cs.n);
    if (function == "correlation") {
      STATDB_ASSIGN_OR_RETURN(double r, cs.PearsonR());
      result = SummaryResult::Scalar(r);
    } else if (function == "covariance") {
      STATDB_ASSIGN_OR_RETURN(double c, cs.Covariance());
      result = SummaryResult::Scalar(c);
    } else {
      STATDB_ASSIGN_OR_RETURN(LinearFit fit, cs.Fit());
      result = SummaryResult::Model(fit);
    }
  }
  ++state->traffic.computed;
  if (opts.cache_result) {
    ScopedSpan span(trace, SpanKind::kSummaryInsert);
    STATDB_RETURN_IF_ERROR(
        state->summary->Insert(key, result, state->view->version()));
    if (delta::ArmComomentMaintainer(key, cs, &state->comaintainers) &&
        flight_.enabled()) {
      flight_.Record(causal::Current(), FlightEventKind::kMaintainerArm,
                     QueryLabel(view, function, attr_a + "," + attr_b), 0,
                     int64_t(cs.n));
    }
  }
  if (pool) {
    pool->Quiesce();  // join workers so `executed` is exact
    FoldPoolStats(*pool);
  }
  return QueryAnswer{std::move(result), AnswerSource::kComputed, true, ""};
}

Result<QueryAnswer> StatisticalDbms::QueryBivariate(
    const std::string& view, const std::string& function,
    const std::string& attr_a, const std::string& attr_b,
    const QueryOptions& opts) {
  // Full wrapper (begin/end pairing regression fix): this entry point
  // used to bypass the flight recorder and EmitQueryObs entirely, so a
  // crosstab forwarded from QueryBivariateParallel left no events and
  // no outcome counter at all.
  causal::ScopedTraceContext scope(causal::Mint());
  TraceTimer timer;
  std::optional<QueryTrace> trace;
  if (WantTrace()) {
    trace.emplace();
    trace->SetLabel("bivariate", view, function, attr_a + "," + attr_b);
    trace->SetContext(scope.ctx().trace_id, scope.ctx().session_id,
                      scope.ctx().query_seq);
  }
  QueryTrace* tr = trace ? &*trace : nullptr;
  if (flight_.enabled()) {
    flight_.Record(scope.ctx(), FlightEventKind::kQueryBegin,
                   QueryLabel(view, function, attr_a + "," + attr_b));
  }
  Result<QueryAnswer> r =
      QueryBivariateImpl(view, function, attr_a, attr_b, opts, tr);
  TraceOutcome outcome = r.ok() ? OutcomeOfSource(r.value().source)
                                : TraceOutcome::kError;
  EmitQueryObs(timer, tr, outcome, "bivariate");
  NoteQueryOutcome(scope.ctx(), view, function, attr_a + "," + attr_b,
                   outcome, timer.ElapsedMs());
  if (r.ok()) CommitAfterQuery(attr_a);
  return r;
}

Result<QueryAnswer> StatisticalDbms::QueryBivariateImpl(
    const std::string& view, const std::string& function,
    const std::string& attr_a, const std::string& attr_b,
    const QueryOptions& opts, QueryTrace* trace) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  ++state->traffic.queries;
  ++state->traffic.attribute_accesses[attr_a];
  ++state->traffic.attribute_accesses[attr_b];
  SummaryKey key{function, {attr_a, attr_b}, ""};

  // Flush barrier, as in QueryBivariateParallelImpl.
  if (!opts.allow_stale) {
    for (const std::string* attr : {&attr_a, &attr_b}) {
      if (state->deltas.HasPending(*attr)) {
        STATDB_RETURN_IF_ERROR(FlushAttributeDeltas(view, state, *attr));
      }
    }
  }

  Result<SummaryEntry> cached = [&] {
    ScopedSpan span(trace, SpanKind::kCacheProbe);
    return state->summary->Lookup(key);
  }();
  if (cached.ok() && !cached.value().stale) {
    ++state->traffic.cache_hits;
    return QueryAnswer{cached.value().result, AnswerSource::kCacheHit, true,
                       ""};
  }
  if (cached.ok() && cached.value().stale &&
      (opts.allow_stale ||
       (opts.max_version_lag > 0 &&
        state->view->version() - cached.value().view_version <=
            opts.max_version_lag))) {
    ++state->traffic.stale_hits;
    state->summary->NoteServedStale();
    return QueryAnswer{cached.value().result, AnswerSource::kStaleCacheHit,
                       false, "stale cached value"};
  }

  // Compute paths flush unconditionally (see QueryBivariateParallelImpl).
  for (const std::string* attr : {&attr_a, &attr_b}) {
    if (state->deltas.HasPending(*attr)) {
      STATDB_RETURN_IF_ERROR(FlushAttributeDeltas(view, state, *attr));
    }
  }

  // Row-aligned read of both columns (pairs with either cell missing are
  // dropped — pairwise deletion).
  std::vector<Value> va;
  std::vector<Value> vb;
  {
    ScopedSpan span(trace, SpanKind::kScan);
    STATDB_ASSIGN_OR_RETURN(va, state->view->ReadColumn(attr_a));
    STATDB_ASSIGN_OR_RETURN(vb, state->view->ReadColumn(attr_b));
    span.SetRowsPaged(2 * va.size(), ColumnFile::kCellsPerPage);
  }
  SummaryResult result;
  std::optional<ComomentStats> cs_seed;
  if (function == "correlation" || function == "covariance" ||
      function == "regression") {
    std::vector<double> xs, ys;
    for (size_t i = 0; i < va.size(); ++i) {
      if (va[i].is_null() || vb[i].is_null()) continue;
      Result<double> x = va[i].ToDouble();
      Result<double> y = vb[i].ToDouble();
      if (!x.ok() || !y.ok()) continue;
      xs.push_back(x.value());
      ys.push_back(y.value());
    }
    cs_seed = ComputeComoments(xs, ys);
    if (function == "correlation") {
      STATDB_ASSIGN_OR_RETURN(double r, PearsonR(xs, ys));
      result = SummaryResult::Scalar(r);
    } else if (function == "covariance") {
      STATDB_ASSIGN_OR_RETURN(double c, Covariance(xs, ys));
      result = SummaryResult::Scalar(c);
    } else {
      STATDB_ASSIGN_OR_RETURN(LinearFit fit, FitLinear(xs, ys));
      result = SummaryResult::Model(fit);
    }
  } else if (function == "crosstab" || function == "chi2_independence") {
    Table pair{Schema({Attribute::Category(attr_a, DataType::kInt64),
                       Attribute::Category(attr_b, DataType::kInt64)})};
    for (size_t i = 0; i < va.size(); ++i) {
      // Category cells are int-coded in views; keep whatever they are.
      Row row = {va[i], vb[i]};
      Status s = pair.AppendRow(std::move(row));
      if (!s.ok()) {
        return InvalidArgumentError(
            "bivariate cross-tab needs integer-coded attributes");
      }
    }
    STATDB_ASSIGN_OR_RETURN(CrossTab ct,
                            BuildCrossTab(pair, attr_a, attr_b));
    if (function == "crosstab") {
      result = SummaryResult::Contingency(std::move(ct));
    } else {
      STATDB_ASSIGN_OR_RETURN(TestResult tr, ChiSquaredIndependence(ct));
      result = SummaryResult::Vector({tr.statistic, tr.dof, tr.p_value});
    }
  } else {
    return InvalidArgumentError("unknown bivariate function " + function);
  }
  ++state->traffic.computed;
  if (opts.cache_result) {
    ScopedSpan span(trace, SpanKind::kSummaryInsert);
    STATDB_RETURN_IF_ERROR(
        state->summary->Insert(key, result, state->view->version()));
    if (cs_seed.has_value() &&
        delta::ArmComomentMaintainer(key, *cs_seed,
                                     &state->comaintainers) &&
        flight_.enabled()) {
      flight_.Record(causal::Current(), FlightEventKind::kMaintainerArm,
                     QueryLabel(view, function, attr_a + "," + attr_b), 0,
                     int64_t(cs_seed->n));
    }
  }
  return QueryAnswer{std::move(result), AnswerSource::kComputed, true, ""};
}

Result<QueryAnswer> StatisticalDbms::QueryGroupCompare(
    const std::string& view, const std::string& value_attr,
    const std::string& category_attr, int64_t code_a, int64_t code_b,
    const QueryOptions& opts) {
  // Full wrapper, same pairing contract (and regression fix) as
  // QueryBivariate.
  causal::ScopedTraceContext scope(causal::Mint());
  TraceTimer timer;
  std::optional<QueryTrace> trace;
  if (WantTrace()) {
    trace.emplace();
    trace->SetLabel("groupcompare", view, "welch_t",
                    value_attr + "," + category_attr);
    trace->SetContext(scope.ctx().trace_id, scope.ctx().session_id,
                      scope.ctx().query_seq);
  }
  QueryTrace* tr = trace ? &*trace : nullptr;
  if (flight_.enabled()) {
    flight_.Record(scope.ctx(), FlightEventKind::kQueryBegin,
                   QueryLabel(view, "welch_t",
                              value_attr + "," + category_attr));
  }
  Result<QueryAnswer> r = QueryGroupCompareImpl(
      view, value_attr, category_attr, code_a, code_b, opts, tr);
  TraceOutcome outcome = r.ok() ? OutcomeOfSource(r.value().source)
                                : TraceOutcome::kError;
  EmitQueryObs(timer, tr, outcome, "group_compare");
  NoteQueryOutcome(scope.ctx(), view, "welch_t",
                   value_attr + "," + category_attr, outcome,
                   timer.ElapsedMs());
  if (r.ok()) CommitAfterQuery(value_attr);
  return r;
}

Result<QueryAnswer> StatisticalDbms::QueryGroupCompareImpl(
    const std::string& view, const std::string& value_attr,
    const std::string& category_attr, int64_t code_a, int64_t code_b,
    const QueryOptions& opts, QueryTrace* trace) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  ++state->traffic.queries;
  ++state->traffic.attribute_accesses[value_attr];
  ++state->traffic.attribute_accesses[category_attr];
  FunctionParams params;
  params.Set("a", double(code_a)).Set("b", double(code_b));
  SummaryKey key{"welch_t", {value_attr, category_attr}, params.Encode()};

  Result<SummaryEntry> cached = [&] {
    ScopedSpan span(trace, SpanKind::kCacheProbe);
    return state->summary->Lookup(key);
  }();
  if (cached.ok() && !cached.value().stale) {
    ++state->traffic.cache_hits;
    return QueryAnswer{cached.value().result, AnswerSource::kCacheHit, true,
                       ""};
  }

  std::vector<Value> values;
  std::vector<Value> codes;
  {
    ScopedSpan span(trace, SpanKind::kScan);
    STATDB_ASSIGN_OR_RETURN(values, state->view->ReadColumn(value_attr));
    STATDB_ASSIGN_OR_RETURN(codes, state->view->ReadColumn(category_attr));
    span.SetRowsPaged(2 * values.size(), ColumnFile::kCellsPerPage);
  }
  std::vector<double> group_a, group_b;
  SummaryResult result;
  {
    ScopedSpan span(trace, SpanKind::kCompute);
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i].is_null() || codes[i].is_null()) continue;
      Result<int64_t> code = codes[i].ToInt();
      Result<double> v = values[i].ToDouble();
      if (!code.ok() || !v.ok()) continue;
      if (*code == code_a) group_a.push_back(*v);
      if (*code == code_b) group_b.push_back(*v);
    }
    span.SetRows(group_a.size() + group_b.size());
    STATDB_ASSIGN_OR_RETURN(TestResult tr, WelchTTest(group_a, group_b));
    result = SummaryResult::Vector({tr.statistic, tr.dof, tr.p_value});
  }
  ++state->traffic.computed;
  if (opts.cache_result) {
    ScopedSpan span(trace, SpanKind::kSummaryInsert);
    STATDB_RETURN_IF_ERROR(
        state->summary->Insert(key, result, state->view->version()));
  }
  return QueryAnswer{std::move(result), AnswerSource::kComputed, true, ""};
}

Result<Value> StatisticalDbms::CoerceToAttribute(
    const Schema& schema, const std::string& attribute, const Value& v) {
  STATDB_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(attribute));
  if (v.is_null()) return v;
  DataType want = schema.attr(idx).type;
  if (v.type() == want) return v;
  if (want == DataType::kInt64 && v.type() == DataType::kDouble) {
    STATDB_ASSIGN_OR_RETURN(int64_t i, v.ToInt());
    return Value::Int(i);
  }
  if (want == DataType::kDouble && v.type() == DataType::kInt64) {
    return Value::Real(double(v.AsInt()));
  }
  return InvalidArgumentError("probe value type does not match attribute " +
                              attribute);
}

Status StatisticalDbms::MaintainIndexes(
    ViewState* state, const std::string& attribute,
    const std::vector<CellChange>& changes) {
  auto it = state->indexes.find(attribute);
  if (it == state->indexes.end()) return Status::OK();
  for (const CellChange& ch : changes) {
    STATDB_RETURN_IF_ERROR(
        it->second->ApplyChange(ch.row, ch.old_value, ch.new_value));
  }
  return Status::OK();
}

Status StatisticalDbms::CreateAttributeIndex(const std::string& view,
                                             const std::string& attribute) {
  STATDB_RETURN_IF_ERROR(GuardMutable());
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  if (state->indexes.contains(attribute)) {
    return AlreadyExistsError("attribute already indexed: " + attribute);
  }
  if (!state->view->schema().Contains(attribute)) {
    return NotFoundError("no attribute named " + attribute);
  }
  STATDB_ASSIGN_OR_RETURN(BufferPool * pool, storage_->GetPool(disk_device_));
  STATDB_ASSIGN_OR_RETURN(
      std::unique_ptr<AttributeIndex> index,
      AttributeIndex::Build(*state->view, attribute, pool));
  state->indexes.emplace(attribute, std::move(index));
  // Indexes rebuild on demand after a crash (they are not in the
  // manifest), but committing here keeps the no-steal dirty set bounded.
  return CommitDurable(/*attr_hint=*/attribute, /*force=*/false);
}

bool StatisticalDbms::HasAttributeIndex(const std::string& view,
                                        const std::string& attribute) {
  Result<ViewState*> state = GetState(view);
  return state.ok() && state.value()->indexes.contains(attribute);
}

Result<uint64_t> StatisticalDbms::CountWhereEqual(const std::string& view,
                                                  const std::string& attribute,
                                                  const Value& v,
                                                  bool* used_index) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  ++state->traffic.attribute_accesses[attribute];
  STATDB_ASSIGN_OR_RETURN(
      Value probe, CoerceToAttribute(state->view->schema(), attribute, v));
  auto it = state->indexes.find(attribute);
  if (it != state->indexes.end()) {
    if (used_index != nullptr) *used_index = true;
    return it->second->CountEqual(probe);
  }
  if (used_index != nullptr) *used_index = false;
  const Schema& schema = state->view->schema();
  STATDB_ASSIGN_OR_RETURN(size_t attr_idx, schema.IndexOf(attribute));
  DataType t = schema.attr(attr_idx).type;
  // Shared ref, not the raw pointer: a concurrent WriteCell/Append
  // detaches the sidecar, and this scan's reference must keep the
  // retired pages alive until it finishes.
  const std::shared_ptr<const CompressedColumnFile> sidecar =
      state->view->CompressedSidecarRef(attribute);
  if (compressed_scan_enabled_ && sidecar != nullptr && !probe.is_null() &&
      (t == DataType::kInt64 || t == DataType::kDouble)) {
    // No index, but an RLE sidecar: decide the predicate per run instead
    // of per cell (string columns keep the Value comparison below — their
    // run raws are dictionary codes, not comparable as doubles).
    simd::RunPredicate rp;
    rp.kind = simd::RunPredicate::Kind::kEqual;
    STATDB_ASSIGN_OR_RETURN(rp.equal, probe.ToDouble());
    STATDB_ASSIGN_OR_RETURN(
        FilteredScanResult filtered,
        ScanCompressedFiltered(*sidecar, RunKindOf(schema, attr_idx), rp,
                               /*want_counts=*/false, /*pool=*/nullptr));
    obs_scan_compressed_->Inc();
    return filtered.rows;
  }
  STATDB_ASSIGN_OR_RETURN(std::vector<Value> column,
                          state->view->ReadColumn(attribute));
  uint64_t count = 0;
  for (const Value& cell : column) {
    if (cell == probe) ++count;
  }
  obs_scan_materialized_->Inc();
  return count;
}

Result<uint64_t> StatisticalDbms::CountWhereInRange(
    const std::string& view, const std::string& attribute, const Value& lo,
    const Value& hi, bool* used_index) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  ++state->traffic.attribute_accesses[attribute];
  const Schema& schema = state->view->schema();
  STATDB_ASSIGN_OR_RETURN(Value plo, CoerceToAttribute(schema, attribute, lo));
  STATDB_ASSIGN_OR_RETURN(Value phi, CoerceToAttribute(schema, attribute, hi));
  auto it = state->indexes.find(attribute);
  if (it != state->indexes.end()) {
    if (used_index != nullptr) *used_index = true;
    return it->second->CountInRange(plo, phi);
  }
  if (used_index != nullptr) *used_index = false;
  STATDB_ASSIGN_OR_RETURN(size_t attr_idx, schema.IndexOf(attribute));
  DataType t = schema.attr(attr_idx).type;
  // Shared ref, not the raw pointer: a concurrent WriteCell/Append
  // detaches the sidecar, and this scan's reference must keep the
  // retired pages alive until it finishes.
  const std::shared_ptr<const CompressedColumnFile> sidecar =
      state->view->CompressedSidecarRef(attribute);
  if (compressed_scan_enabled_ && sidecar != nullptr && !plo.is_null() &&
      !phi.is_null() && (t == DataType::kInt64 || t == DataType::kDouble)) {
    simd::RunPredicate rp;
    rp.kind = simd::RunPredicate::Kind::kRange;
    STATDB_ASSIGN_OR_RETURN(rp.lo, plo.ToDouble());
    STATDB_ASSIGN_OR_RETURN(rp.hi, phi.ToDouble());
    STATDB_ASSIGN_OR_RETURN(
        FilteredScanResult filtered,
        ScanCompressedFiltered(*sidecar, RunKindOf(schema, attr_idx), rp,
                               /*want_counts=*/false, /*pool=*/nullptr));
    obs_scan_compressed_->Inc();
    return filtered.rows;
  }
  STATDB_ASSIGN_OR_RETURN(std::vector<Value> column,
                          state->view->ReadColumn(attribute));
  uint64_t count = 0;
  for (const Value& cell : column) {
    if (cell.is_null()) continue;
    if (!(cell < plo) && !(phi < cell)) ++count;
  }
  obs_scan_materialized_->Inc();
  return count;
}

Status StatisticalDbms::ReorganizeView(
    const std::string& view, const std::vector<std::string>& sort_attrs) {
  STATDB_RETURN_IF_ERROR(GuardMutable());
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  STATDB_ASSIGN_OR_RETURN(ViewRecord * rec, mdb_.GetView(view));
  // Sorting permutes row coordinates; buffered deltas (keyed by row id)
  // and comoment co-value reads would address the wrong cells afterwards.
  // Flush against the pre-sort layout while the ids still mean something.
  STATDB_RETURN_IF_ERROR(FlushViewDeltas(view, state));
  // The swap below destroys the old ConcreteView; the scope's grace
  // period guarantees no pinned reader is still on it, and Publish
  // re-routes live reads to the fresh object.
  session::MutationScope scope(sessions_.get(),
                               session::MutationScope::Kind::kMutate, view,
                               state->view.get());
  if (!scope.ok()) return scope.status();
  STATDB_ASSIGN_OR_RETURN(Table snapshot, state->view->Snapshot());
  STATDB_ASSIGN_OR_RETURN(Table sorted, SortBy(snapshot, sort_attrs));
  STATDB_ASSIGN_OR_RETURN(BufferPool * pool, storage_->GetPool(disk_device_));
  auto fresh = std::make_unique<ConcreteView>(view, sorted.schema(), pool);
  STATDB_RETURN_IF_ERROR(fresh->LoadFrom(sorted));
  // Reorganization exists to cluster runs (§2.7) — rebuild the sidecars
  // over the sorted rows, where RLE compresses best.
  STATDB_RETURN_IF_ERROR(fresh->CompressColumns());
  // Under durability the commit at the end flushes (force-at-commit).
  if (wal_ == nullptr) {
    STATDB_RETURN_IF_ERROR(pool->FlushAll());
  }
  state->view = std::move(fresh);
  // Publish immediately: the begin-time pointer just died with the swap,
  // so the destructor's auto-publish must never run here.
  scope.Publish(state->view.get());
  // New physical baseline: row coordinates changed, so the old history's
  // undo records no longer address the right cells.
  rec->history = UpdateHistory();
  rec->version = 0;
  state->view->SetVersion(0);
  // Column multisets are unchanged, so cached summaries remain valid;
  // maintainers carry only multiset state and survive too. Indexes map
  // values to row ids, which did change: rebuild them.
  for (auto& [attr, index] : state->indexes) {
    STATDB_ASSIGN_OR_RETURN(index,
                            AttributeIndex::Build(*state->view, attr, pool));
  }
  return CommitDurable(/*attr_hint=*/"", /*force=*/true);
}

Result<std::string> StatisticalDbms::RecommendClusterAttribute(
    const std::string& view) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  const Schema& schema = state->view->schema();
  std::string best;
  uint64_t best_count = 0;
  for (const auto& [attr, count] : state->traffic.attribute_accesses) {
    Result<size_t> idx = schema.IndexOf(attr);
    if (!idx.ok()) continue;
    if (schema.attr(*idx).kind != AttributeKind::kCategory) continue;
    if (count > best_count) {
      best = attr;
      best_count = count;
    }
  }
  if (best.empty()) {
    return NotFoundError("no category attribute referenced yet");
  }
  return best;
}

Status StatisticalDbms::ComputeStandardSummary(const std::string& view,
                                               const std::string& attribute) {
  static const char* kBattery[] = {"min",       "max",      "mean",
                                   "variance",  "stddev",   "median",
                                   "quartiles", "mode",     "distinct",
                                   "histogram"};
  for (const char* fn : kBattery) {
    STATDB_ASSIGN_OR_RETURN(QueryAnswer answer,
                            Query(view, fn, attribute, {}, {}));
    (void)answer;
  }
  return Status::OK();
}

Status StatisticalDbms::AnnotateAttribute(const std::string& view,
                                          const std::string& attribute,
                                          std::string note) {
  STATDB_RETURN_IF_ERROR(GuardMutable());
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  SummaryKey key = SummaryKey::Of("note", attribute);
  STATDB_RETURN_IF_ERROR(state->summary->Insert(
      key, SummaryResult::Text(std::move(note)), state->view->version()));
  return CommitDurable(/*attr_hint=*/attribute, /*force=*/false);
}

Status StatisticalDbms::MaintainSummaries(
    const std::string& view_name, ViewState* state,
    const std::string& attribute, const std::vector<CellChange>& changes) {
  STATDB_ASSIGN_OR_RETURN(const ViewRecord* rec, mdb_.GetView(view_name));
  switch (rec->policy) {
    case MaintenancePolicy::kInvalidate: {
      STATDB_ASSIGN_OR_RETURN(
          uint64_t n, state->summary->InvalidateAttribute(attribute));
      (void)n;
      return Status::OK();
    }
    case MaintenancePolicy::kEager: {
      std::vector<SummaryEntry> entries;
      STATDB_RETURN_IF_ERROR(state->summary->ForEachOnAttribute(
          attribute, [&entries](const SummaryEntry& e) {
            entries.push_back(e);
            return Status::OK();
          }));
      if (entries.empty()) return Status::OK();
      STATDB_ASSIGN_OR_RETURN(std::vector<double> data,
                              state->view->ReadNumericColumn(attribute));
      for (const SummaryEntry& e : entries) {
        if (e.key.attributes.size() != 1 || e.key.function == "note") {
          // Cross-column results are recomputed lazily.
          STATDB_RETURN_IF_ERROR(state->summary->MarkStale(e.key));
          continue;
        }
        STATDB_ASSIGN_OR_RETURN(FunctionParams params,
                                FunctionParams::Decode(e.key.params));
        Result<SummaryResult> fresh =
            mdb_.functions().Compute(e.key.function, data, params);
        if (!fresh.ok()) {
          STATDB_RETURN_IF_ERROR(state->summary->MarkStale(e.key));
          continue;
        }
        STATDB_RETURN_IF_ERROR(state->summary->Refresh(
            e.key, fresh.value(), state->view->version()));
        ++state->traffic.eager_recomputes;
      }
      return Status::OK();
    }
    case MaintenancePolicy::kIncremental:
      break;
  }

  // Incremental path (§4.2/§4.3). Mutations never touch the maintainers
  // directly any more: numeric changes land in the view's delta buffer
  // and flow through one amortized FlushAttributeDeltas pass — right away
  // for eager entries, at the flush threshold for batched ones, never
  // (invalidate instead) for lazy ones. The adaptive policy controller
  // picks the strategy per view.attr from the profiler's heatmap row.
  WorkloadProfiler::AttributeRow row =
      profiler_.AttributeStats(view_name, attribute);
  delta::PolicyDecision decision = delta_policy_.Observe(
      view_name, attribute, row.accesses, row.updates, delta_config_);
  if (decision.switched) {
    obs_delta_policy_switches_->Inc();
    if (flight_.enabled()) {
      flight_.Record(causal::Current(), FlightEventKind::kPolicySwitch,
                     view_name + "." + attribute,
                     int64_t(decision.from), int64_t(decision.strategy));
    }
    if (decision.strategy ==
        delta::MaintenanceStrategy::kInvalidateLazy) {
      // Entering lazy: pending work and armed rules are dead weight (the
      // next flip back to maintain re-arms on first compute). Dropping
      // the rules *before* invalidating keeps the no-resurrection
      // invariant: a later flush can never refresh these entries.
      state->deltas.Discard(attribute);
      std::string prefix = SummaryKey::AttributePrefix(attribute);
      auto mit = state->maintainers.lower_bound(prefix);
      while (mit != state->maintainers.end() &&
             mit->first.compare(0, prefix.size(), prefix) == 0) {
        mit = state->maintainers.erase(mit);
      }
      for (auto cit = state->comaintainers.begin();
           cit != state->comaintainers.end();) {
        cit = cit->second->Touches(attribute)
                  ? state->comaintainers.erase(cit)
                  : std::next(cit);
      }
    }
  }
  if (decision.strategy == delta::MaintenanceStrategy::kInvalidateLazy) {
    return state->summary->InvalidateAttribute(attribute).status();
  }

  Result<size_t> buffered =
      state->deltas.Buffer(attribute, changes, delta_config_.coalesce);
  if (!buffered.ok()) {
    // Non-numeric changes defeat differencing: fall back to invalidation.
    return state->summary->InvalidateAttribute(attribute).status();
  }
  obs_delta_buffered_->Inc(buffered.value());
  // Eager is "batch of one": it rides the same buffer + flush engine as
  // batched, so parity between the two strategies is structural.
  if (decision.strategy == delta::MaintenanceStrategy::kEagerIncremental ||
      state->deltas.PendingCount(attribute) >=
          delta_config_.flush_threshold) {
    return FlushAttributeDeltas(view_name, state, attribute);
  }
  return Status::OK();
}

Status StatisticalDbms::FlushAttributeDeltas(const std::string& view_name,
                                             ViewState* state,
                                             const std::string& attribute) {
  std::vector<delta::RowDelta> batch = state->deltas.Drain(attribute);
  if (batch.empty()) return Status::OK();
  delta::FlushEnv env;
  env.view_name = view_name;
  env.summary = state->summary.get();
  env.maintainers = &state->maintainers;
  env.comaintainers = &state->comaintainers;
  env.view_version = state->view->version();
  env.load_column = [state, attribute]() {
    return state->view->ReadNumericColumn(attribute);
  };
  env.read_cell = [state](uint64_t row_id, const std::string& attr)
      -> Result<std::optional<double>> {
    STATDB_ASSIGN_OR_RETURN(Value v, state->view->ReadCell(row_id, attr));
    if (v.is_null()) return std::optional<double>();
    Result<double> d = v.ToDouble();
    if (!d.ok()) return std::optional<double>();
    return std::optional<double>(d.value());
  };
  env.has_pending = [state](const std::string& attr) {
    return state->deltas.HasPending(attr);
  };
  env.flight = &flight_;
  // The flush runs on behalf of whichever operation forced it (a query's
  // flush-before-serve, an update's threshold flush, a barrier): its
  // ambient context is the trigger's identity.
  env.ctx = causal::Current();
  delta::FlushCounters counters;
  Status s = delta::FlushAttribute(attribute, batch, env, &counters);
  state->traffic.maintainer_applies += counters.applied;
  state->traffic.maintainer_rebuilds += counters.rebuilds;
  obs_delta_flushed_->Inc(batch.size());
  return s;
}

Status StatisticalDbms::FlushViewDeltas(const std::string& view_name,
                                        ViewState* state) {
  for (const std::string& attr : state->deltas.PendingAttributes()) {
    STATDB_RETURN_IF_ERROR(FlushAttributeDeltas(view_name, state, attr));
  }
  return Status::OK();
}

Status StatisticalDbms::FlushDeltas(const std::string& view) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  return FlushViewDeltas(view, state);
}

Result<uint64_t> StatisticalDbms::PendingDeltas(const std::string& view) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  return uint64_t{state->deltas.TotalPending()};
}

Status StatisticalDbms::MaintainDerivedColumns(
    const std::string& view_name, ViewState* state,
    const std::string& attribute, const std::vector<CellChange>& changes,
    std::vector<CellChange>* extra_changes) {
  STATDB_ASSIGN_OR_RETURN(
      std::vector<DerivedColumnDef*> affected,
      mdb_.DerivedColumnsOn(view_name, attribute));
  for (DerivedColumnDef* def : affected) {
    if (def->kind == DerivedRuleKind::kLocal) {
      // "Local" rule: recompute exactly the touched rows (§3.2).
      for (const CellChange& ch : changes) {
        STATDB_ASSIGN_OR_RETURN(Row row, state->view->ReadRow(ch.row));
        STATDB_ASSIGN_OR_RETURN(
            Value fresh, def->row_expr->Eval(row, state->view->schema()));
        STATDB_ASSIGN_OR_RETURN(Value old,
                                state->view->ReadCell(ch.row, def->name));
        if (old == fresh) continue;
        STATDB_RETURN_IF_ERROR(
            state->view->WriteCell(ch.row, def->name, fresh));
        extra_changes->push_back(CellChange{ch.row, def->name, old, fresh});
      }
    } else {
      // Whole-vector rule: mark out of date; regenerate on next read.
      def->out_of_date = true;
      STATDB_ASSIGN_OR_RETURN(
          uint64_t n, state->summary->InvalidateAttribute(def->name));
      (void)n;
    }
  }
  return Status::OK();
}

Status StatisticalDbms::MaybeAuditAfterUpdate(const std::string& view) {
  if (!audit_after_update_) return Status::OK();
  // The auditor recomputes cached statistics from base data; flush first
  // so entries with buffered deltas are comparable. (Audit builds thus
  // defeat batching — acceptable: auditing is a debug mode.)
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  STATDB_RETURN_IF_ERROR(FlushViewDeltas(view, state));
  CheckReport report;
  DbAuditor auditor(this);
  STATDB_RETURN_IF_ERROR(auditor.AuditView(view, &report));
  return report.ToStatus();
}

Result<uint64_t> StatisticalDbms::Update(const std::string& view,
                                         const UpdateSpec& spec) {
  // Mutation entry point: one causal context covers the whole protocol —
  // buffered deltas, eager flushes, the WAL commit and the kUpdate event
  // all stamp this trace_id.
  causal::ScopedTraceContext causal_scope(causal::Mint());
  TraceTimer timer;
  Result<uint64_t> r = UpdateUnderContext(view, spec);
  slo_.Record("update", timer.ElapsedMs(), !r.ok());
  return r;
}

Result<uint64_t> StatisticalDbms::UpdateUnderContext(const std::string& view,
                                                     const UpdateSpec& spec) {
  STATDB_RETURN_IF_ERROR(GuardMutable());
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  // Session protocol: capture pre-images and wait out pinned readers on
  // the live route before any byte changes; every exit below publishes a
  // new commit seq (the scope's destructor covers the error paths).
  session::MutationScope scope(sessions_.get(),
                               session::MutationScope::Kind::kMutate, view,
                               state->view.get());
  if (!scope.ok()) return scope.status();
  STATDB_ASSIGN_OR_RETURN(std::vector<CellChange> changes,
                          state->view->ApplyUpdate(spec));
  if (changes.empty()) return 0;
  ++state->traffic.updates;
  state->traffic.cells_changed += changes.size();
  ++state->traffic.attribute_accesses[spec.column];
  if (spec.predicate != nullptr) {
    for (const std::string& attr : spec.predicate->ReferencedColumns()) {
      ++state->traffic.attribute_accesses[attr];
    }
  }

  STATDB_RETURN_IF_ERROR(MaintainIndexes(state, spec.column, changes));

  std::vector<CellChange> derived_changes;
  STATDB_RETURN_IF_ERROR(MaintainDerivedColumns(view, state, spec.column,
                                                changes, &derived_changes));

  // Log the whole logical update (including derived fixes) as one entry.
  STATDB_ASSIGN_OR_RETURN(ViewRecord * rec, mdb_.GetView(view));
  UpdateLogEntry entry;
  entry.version = state->view->version();
  entry.description = spec.description.empty()
                          ? ("update " + spec.column)
                          : spec.description;
  entry.changes = changes;
  entry.changes.insert(entry.changes.end(), derived_changes.begin(),
                       derived_changes.end());
  STATDB_RETURN_IF_ERROR(rec->history.Append(std::move(entry)));
  rec->version = state->view->version();

  STATDB_RETURN_IF_ERROR(
      MaintainSummaries(view, state, spec.column, changes));
  // Changes to kLocal derived columns also touch their cached summaries.
  std::map<std::string, std::vector<CellChange>> by_column;
  for (const CellChange& ch : derived_changes) {
    by_column[ch.column].push_back(ch);
  }
  for (const auto& [column, column_changes] : by_column) {
    STATDB_RETURN_IF_ERROR(MaintainIndexes(state, column, column_changes));
    STATDB_RETURN_IF_ERROR(
        MaintainSummaries(view, state, column, column_changes));
  }
  STATDB_RETURN_IF_ERROR(MaybeAuditAfterUpdate(view));
  STATDB_RETURN_IF_ERROR(
      CommitDurable(/*attr_hint=*/spec.column, /*force=*/true));
  uint64_t total_cells = changes.size() + derived_changes.size();
  if (flight_.enabled()) {
    flight_.Record(causal::Current(), FlightEventKind::kUpdate,
                   view + "." + spec.column,
                   int64_t(state->view->version()), int64_t(total_cells));
  }
  profiler_.NoteUpdate(view, spec.column, changes.size());
  for (const auto& [column, column_changes] : by_column) {
    profiler_.NoteUpdate(view, column, column_changes.size());
  }
  MaybeTickTimeseries();
  return total_cells;
}

Status StatisticalDbms::Rollback(const std::string& view,
                                 uint64_t target_version) {
  causal::ScopedTraceContext causal_scope(causal::Mint());
  TraceTimer timer;
  Status s = RollbackUnderContext(view, target_version);
  slo_.Record("rollback", timer.ElapsedMs(), !s.ok());
  return s;
}

Status StatisticalDbms::RollbackUnderContext(const std::string& view,
                                             uint64_t target_version) {
  STATDB_RETURN_IF_ERROR(GuardMutable());
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  STATDB_ASSIGN_OR_RETURN(ViewRecord * rec, mdb_.GetView(view));
  // Satellite fix (rollback vs pinned readers): ClampVersions below
  // rewrites the head summary cache's version stamps, and the undo loop
  // rewrites cells in place. Pinned sessions must never observe either —
  // they resolve against the capture installed here and against the
  // session timeline (keyed by monotone commit seqs, immune to version
  // reuse after rollback).
  session::MutationScope scope(sessions_.get(),
                               session::MutationScope::Kind::kMutate, view,
                               state->view.get());
  if (!scope.ok()) return scope.status();
  // Attributes touched by the updates being undone.
  std::vector<std::string> affected;
  for (const UpdateLogEntry* e : rec->history.EntriesSince(target_version)) {
    for (const CellChange& ch : e->changes) {
      if (std::find(affected.begin(), affected.end(), ch.column) ==
          affected.end()) {
        affected.push_back(ch.column);
      }
    }
  }
  STATDB_RETURN_IF_ERROR(rec->history.Rollback(
      target_version, [state](const CellChange& ch) -> Status {
        STATDB_RETURN_IF_ERROR(
            state->view->WriteCell(ch.row, ch.column, ch.old_value));
        // Keep any secondary index in step with the restored cell.
        auto it = state->indexes.find(ch.column);
        if (it != state->indexes.end()) {
          STATDB_RETURN_IF_ERROR(it->second->ApplyChange(
              ch.row, ch.new_value, ch.old_value));
        }
        return Status::OK();
      }));
  state->view->SetVersion(target_version);
  rec->version = target_version;
  for (const std::string& attr : affected) {
    STATDB_ASSIGN_OR_RETURN(uint64_t n,
                            state->summary->InvalidateAttribute(attr));
    (void)n;
  }
  // Entries on unaffected attributes are still valid, but none may keep a
  // version stamp from the undone timeline: re-advanced version numbers
  // would collide with it and poison max_version_lag staleness checks.
  STATDB_ASSIGN_OR_RETURN(uint64_t capped,
                          state->summary->ClampVersions(target_version));
  (void)capped;
  // Maintainer state reflects the rolled-back data; drop it all and let
  // queries re-arm on demand. Buffered deltas describe undone mutations:
  // discard them and stamp their attributes stale (they may not be in
  // `affected` when the pending update predates the rollback window).
  state->maintainers.clear();
  state->comaintainers.clear();
  for (const std::string& attr : state->deltas.PendingAttributes()) {
    state->deltas.Discard(attr);
    STATDB_ASSIGN_OR_RETURN(uint64_t dropped,
                            state->summary->InvalidateAttribute(attr));
    (void)dropped;
  }
  STATDB_RETURN_IF_ERROR(MaybeAuditAfterUpdate(view));
  STATDB_RETURN_IF_ERROR(CommitDurable(/*attr_hint=*/"", /*force=*/true));
  flight_.Record(causal::Current(), FlightEventKind::kRollback, view,
                 int64_t(target_version), int64_t(affected.size()));
  MaybeTickTimeseries();
  return Status::OK();
}

Status StatisticalDbms::AddDerivedColumn(const std::string& view,
                                         DerivedColumnDef def) {
  STATDB_RETURN_IF_ERROR(GuardMutable());
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  std::string name = def.name;
  DerivedRuleKind kind = def.kind;
  ExprPtr expr = def.row_expr;
  {
    // Session scopes do not nest (writer serialization is a flag, not a
    // recursive lock): the column-add publishes at this block's end,
    // before RegenerateDerivedColumn below opens its own scope.
    session::MutationScope scope(sessions_.get(),
                                 session::MutationScope::Kind::kMutate,
                                 view, state->view.get());
    if (!scope.ok()) return scope.status();
    Attribute attr = Attribute::Numeric(name, DataType::kDouble);
    STATDB_RETURN_IF_ERROR(state->view->AddColumn(attr));
    STATDB_RETURN_IF_ERROR(mdb_.AddDerivedColumn(view, std::move(def)));
    if (kind == DerivedRuleKind::kLocal) {
      // Fill every row from the expression.
      uint64_t n = state->view->num_rows();
      for (uint64_t r = 0; r < n; ++r) {
        STATDB_ASSIGN_OR_RETURN(Row row, state->view->ReadRow(r));
        STATDB_ASSIGN_OR_RETURN(Value v,
                                expr->Eval(row, state->view->schema()));
        STATDB_RETURN_IF_ERROR(state->view->WriteCell(r, name, v));
      }
      return CommitDurable(/*attr_hint=*/name, /*force=*/true);
    }
  }
  return RegenerateDerivedColumn(view, name);
}

Status StatisticalDbms::RegenerateDerivedColumn(const std::string& view,
                                                const std::string& column) {
  STATDB_RETURN_IF_ERROR(GuardMutable());
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  STATDB_ASSIGN_OR_RETURN(ViewRecord * rec, mdb_.GetView(view));
  DerivedColumnDef* def = nullptr;
  for (DerivedColumnDef& d : rec->derived_columns) {
    if (d.name == column) {
      def = &d;
      break;
    }
  }
  if (def == nullptr) {
    return NotFoundError("no derived column named " + column);
  }
  if (def->kind != DerivedRuleKind::kRegenerate) {
    return FailedPreconditionError("column " + column +
                                   " has a local rule, not a generator");
  }
  // The generator rewrites the whole column in place: capture + grace
  // before the WriteCell loops, publish (destructor) after.
  session::MutationScope scope(sessions_.get(),
                               session::MutationScope::Kind::kMutate, view,
                               state->view.get());
  if (!scope.ok()) return scope.status();
  switch (def->generator) {
    case ColumnGenerator::kRegressionResiduals: {
      STATDB_ASSIGN_OR_RETURN(
          std::vector<Value> xs,
          state->view->ReadColumn(def->generator_inputs[0]));
      STATDB_ASSIGN_OR_RETURN(
          std::vector<Value> ys,
          state->view->ReadColumn(def->generator_inputs[1]));
      std::vector<double> fx, fy;
      for (size_t i = 0; i < xs.size(); ++i) {
        if (xs[i].is_null() || ys[i].is_null()) continue;
        Result<double> x = xs[i].ToDouble();
        Result<double> y = ys[i].ToDouble();
        if (!x.ok() || !y.ok()) continue;
        fx.push_back(x.value());
        fy.push_back(y.value());
      }
      STATDB_ASSIGN_OR_RETURN(LinearFit fit, FitLinear(fx, fy));
      for (size_t i = 0; i < xs.size(); ++i) {
        Value cell;  // null when either input is missing
        if (!xs[i].is_null() && !ys[i].is_null()) {
          Result<double> x = xs[i].ToDouble();
          Result<double> y = ys[i].ToDouble();
          if (x.ok() && y.ok()) {
            cell = Value::Real(y.value() - fit.Predict(x.value()));
          }
        }
        STATDB_RETURN_IF_ERROR(state->view->WriteCell(i, column, cell));
      }
      break;
    }
    case ColumnGenerator::kZScores: {
      STATDB_ASSIGN_OR_RETURN(
          std::vector<Value> xs,
          state->view->ReadColumn(def->generator_inputs[0]));
      std::vector<double> fx;
      for (const Value& v : xs) {
        if (v.is_null()) continue;
        Result<double> x = v.ToDouble();
        if (x.ok()) fx.push_back(x.value());
      }
      DescriptiveStats s = ComputeDescriptive(fx);
      double sd = s.StdDev();
      for (size_t i = 0; i < xs.size(); ++i) {
        Value cell;
        if (!xs[i].is_null()) {
          Result<double> x = xs[i].ToDouble();
          if (x.ok() && sd > 0) {
            cell = Value::Real((x.value() - s.mean) / sd);
          }
        }
        STATDB_RETURN_IF_ERROR(state->view->WriteCell(i, column, cell));
      }
      break;
    }
    case ColumnGenerator::kNone:
      return InternalError("regenerate rule without a generator");
  }
  def->out_of_date = false;
  // The column's contents changed wholesale; cached summaries on it are
  // stale until recomputed, and any index must be rebuilt.
  STATDB_ASSIGN_OR_RETURN(uint64_t n,
                          state->summary->InvalidateAttribute(column));
  (void)n;
  if (state->indexes.contains(column)) {
    STATDB_ASSIGN_OR_RETURN(BufferPool * pool,
                            storage_->GetPool(disk_device_));
    STATDB_ASSIGN_OR_RETURN(
        state->indexes[column],
        AttributeIndex::Build(*state->view, column, pool));
  }
  return CommitDurable(/*attr_hint=*/column, /*force=*/true);
}

Result<std::vector<Value>> StatisticalDbms::ReadColumn(
    const std::string& view, const std::string& column) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  STATDB_ASSIGN_OR_RETURN(ViewRecord * rec, mdb_.GetView(view));
  for (DerivedColumnDef& def : rec->derived_columns) {
    if (def.name == column && def.out_of_date) {
      STATDB_RETURN_IF_ERROR(RegenerateDerivedColumn(view, column));
      break;
    }
  }
  return state->view->ReadColumn(column);
}

Result<session::SessionManager*> StatisticalDbms::EnableSessions(
    const session::SessionConfig& config) {
  if (sessions_ != nullptr) return sessions_.get();
  auto mgr = std::make_unique<session::SessionManager>(this, config);
  // Bootstrap: every existing view becomes visible at the current commit
  // seq. Views created afterwards register through their CreateView
  // mutation scope.
  for (auto& [name, state] : views_) {
    mgr->BootstrapView(name, state.view.get());
  }
  sessions_ = std::move(mgr);
  return sessions_.get();
}

Result<SummaryDatabase*> StatisticalDbms::GetSummaryDb(
    const std::string& view) {
  STATDB_ASSIGN_OR_RETURN(ViewState * state, GetState(view));
  return state->summary.get();
}

Result<const ViewTrafficStats*> StatisticalDbms::GetTrafficStats(
    const std::string& view) const {
  auto it = views_.find(view);
  if (it == views_.end()) {
    return NotFoundError("no view named " + view);
  }
  return &it->second.traffic;
}

std::string StatisticalDbms::DumpMetrics() {
  obs::JsonObject doc;

  // Per-view Summary Database economics (§3.2) and query/update traffic.
  obs::JsonObject views;
  for (const auto& [name, state] : views_) {
    const SummaryDbStats s = state.summary->stats();
    obs::JsonObject cache;
    cache.Int("lookups", s.lookups)
        .Int("hits", s.hits)
        .Int("stale_hits", s.stale_hits)
        .Int("served_stale", s.served_stale)
        .Int("misses", s.misses)
        .Int("inserts", s.inserts)
        .Int("invalidated", s.invalidated)
        .Num("hit_rate", s.HitRate())
        .Num("served_rate", s.ServedRate())
        .Int("entries", state.summary->entry_count());
    const ViewTrafficStats& t = state.traffic;
    obs::JsonObject traffic;
    traffic.Int("queries", t.queries)
        .Int("cache_hits", t.cache_hits)
        .Int("stale_hits", t.stale_hits)
        .Int("inferred", t.inferred)
        .Int("computed", t.computed)
        .Int("updates", t.updates)
        .Int("cells_changed", t.cells_changed)
        .Int("maintainer_applies", t.maintainer_applies)
        .Int("maintainer_rebuilds", t.maintainer_rebuilds)
        .Int("eager_recomputes", t.eager_recomputes);
    // Delta-buffer occupancy and the live per-attribute strategy for
    // whatever is currently queued (empty when everything is flushed).
    obs::JsonObject delta_attrs;
    for (const std::string& attr : state.deltas.PendingAttributes()) {
      delta_attrs.Raw(
          attr, obs::JsonObject()
                    .Int("pending", state.deltas.PendingCount(attr))
                    .Str("strategy",
                         delta::StrategyName(delta_policy_.Current(
                             name, attr, delta_config_)))
                    .Build());
    }
    obs::JsonObject delta;
    delta.Int("pending", state.deltas.TotalPending())
        .Raw("attributes", delta_attrs.Build());
    obs::JsonObject view;
    view.Raw("summary_db", cache.Build())
        .Raw("traffic", traffic.Build())
        .Raw("delta", delta.Build());
    views.Raw(name, view.Build());
  }
  doc.Raw("views", views.Build());

  // Simulated devices and their buffer pools (§2.3's storage hierarchy).
  obs::JsonObject devices;
  std::vector<std::string> device_names = {tape_device_, disk_device_};
  if (wal_ != nullptr) device_names.push_back(wal_device_name_);
  for (const std::string& dev : device_names) {
    obs::JsonObject entry;
    Result<SimulatedDevice*> device = storage_->GetDevice(dev);
    if (device.ok()) {
      const IoStats& io = device.value()->stats();
      obs::JsonObject ios;
      ios.Int("block_reads", io.block_reads)
          .Int("block_writes", io.block_writes)
          .Int("seeks", io.seeks)
          .Num("simulated_ms", io.simulated_ms);
      entry.Raw("io", ios.Build());
      // Fault-injection counters, present when the device is wrapped.
      const FaultCounters* fc = device.value()->fault_counters();
      if (fc != nullptr) {
        obs::JsonObject faults;
        faults.Int("transient_errors", fc->transient_errors)
            .Int("permanent_errors", fc->permanent_errors)
            .Int("torn_writes", fc->torn_writes)
            .Int("bit_flips", fc->bit_flips)
            .Int("power_cuts", fc->power_cuts);
        entry.Raw("faults", faults.Build());
      }
    }
    Result<BufferPool*> pool = storage_->GetPool(dev);
    if (pool.ok()) {
      BufferPoolStats bp = pool.value()->stats();
      obs::JsonObject bpo;
      bpo.Int("hits", bp.hits)
          .Int("misses", bp.misses)
          .Int("evictions", bp.evictions)
          .Int("flushes", bp.flushes)
          .Num("hit_rate", bp.HitRate())
          .Int("retries", bp.retries)
          .Num("backoff_ms", bp.backoff_ms)
          .Int("checksum_failures", bp.checksum_failures)
          .Int("overflow_frames", bp.overflow_frames);
      entry.Raw("buffer_pool", bpo.Build());
    }
    devices.Raw(dev, entry.Build());
  }
  doc.Raw("devices", devices.Build());

  // Durability: commit/recovery activity and degraded-mode state.
  if (wal_ != nullptr) {
    const WalStats ws = wal_->stats();
    bool is_degraded;
    uint64_t n_recoveries;
    {
      MutexLock lock(session_mu_);
      is_degraded = degraded_;
      n_recoveries = recoveries_;
    }
    obs::JsonObject durability;
    durability.Bool("degraded", is_degraded)
        .Int("last_lsn", wal_->last_lsn())
        .Int("recoveries", n_recoveries)
        .Int("wal_records_appended", ws.records_appended)
        .Int("wal_bytes_appended", ws.bytes_appended)
        .Int("wal_records_recovered", ws.records_recovered)
        .Int("wal_torn_tail_bytes", ws.torn_tail_bytes);
    doc.Raw("durability", durability.Build());
  }

  // The registry: query latency, answer provenance, thread-pool behavior.
  doc.Raw("registry", metrics_.DumpJson());
  return doc.Build();
}

}  // namespace statdb

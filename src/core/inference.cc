#include "core/inference.h"

#include <cmath>

namespace statdb {

namespace {

/// Fresh scalar for (function, attr, params-encoding), or NOT_FOUND.
Result<double> FreshScalar(SummaryDatabase* db, const std::string& function,
                           const std::string& attribute,
                           const std::string& params = "") {
  STATDB_ASSIGN_OR_RETURN(SummaryEntry entry,
                          db->Lookup(SummaryKey::Of(function, attribute,
                                                    params)));
  if (entry.stale) return NotFoundError("entry is stale");
  return entry.result.AsScalar();
}

Result<SummaryEntry> FreshEntry(SummaryDatabase* db,
                                const std::string& function,
                                const std::string& attribute,
                                const std::string& params = "") {
  STATDB_ASSIGN_OR_RETURN(SummaryEntry entry,
                          db->Lookup(SummaryKey::Of(function, attribute,
                                                    params)));
  if (entry.stale) return NotFoundError("entry is stale");
  return entry;
}

InferenceResult Exact(double v, std::string derivation) {
  return InferenceResult{SummaryResult::Scalar(v), true,
                         std::move(derivation)};
}

InferenceResult Estimate(double v, std::string derivation) {
  return InferenceResult{SummaryResult::Scalar(v), false,
                         std::move(derivation)};
}

}  // namespace

Result<InferenceResult> InferFromSummaries(SummaryDatabase* db,
                                           const std::string& function,
                                           const std::string& attribute,
                                           const FunctionParams& params) {
  const std::string p = params.Encode();

  if (function == "mean") {
    // mean = sum / count.
    Result<double> sum = FreshScalar(db, "sum", attribute);
    Result<double> count = FreshScalar(db, "count", attribute);
    if (sum.ok() && count.ok() && count.value() > 0) {
      return Exact(sum.value() / count.value(), "mean = sum/count");
    }
    // Estimate from a histogram's bucket midpoints.
    Result<SummaryEntry> hist = FreshEntry(db, "histogram", attribute);
    if (!hist.ok()) {
      hist = FreshEntry(db, "histogram", attribute, "buckets=20");
    }
    if (hist.ok()) {
      Result<const Histogram*> h = hist.value().result.AsHistogram();
      if (h.ok()) {
        const Histogram& hg = **h;
        if (hg.below == 0 && hg.above == 0 && hg.TotalCount() > 0) {
          double acc = 0;
          uint64_t n = 0;
          for (size_t i = 0; i < hg.counts.size(); ++i) {
            double mid = 0.5 * (hg.edges[i] + hg.edges[i + 1]);
            acc += mid * double(hg.counts[i]);
            n += hg.counts[i];
          }
          return Estimate(acc / double(n),
                          "mean ~= histogram bucket-midpoint average");
        }
      }
    }
    return NotFoundError("no rule derives mean");
  }

  if (function == "sum") {
    Result<double> mean = FreshScalar(db, "mean", attribute);
    Result<double> count = FreshScalar(db, "count", attribute);
    if (mean.ok() && count.ok()) {
      return Exact(mean.value() * count.value(), "sum = mean*count");
    }
    return NotFoundError("no rule derives sum");
  }

  if (function == "stddev") {
    Result<double> var = FreshScalar(db, "variance", attribute);
    if (var.ok() && var.value() >= 0) {
      return Exact(std::sqrt(var.value()), "stddev = sqrt(variance)");
    }
    return NotFoundError("no rule derives stddev");
  }

  if (function == "variance") {
    Result<double> sd = FreshScalar(db, "stddev", attribute);
    if (sd.ok()) {
      return Exact(sd.value() * sd.value(), "variance = stddev^2");
    }
    // Estimate from a covering histogram's bucket midpoints.
    Result<SummaryEntry> hist = FreshEntry(db, "histogram", attribute);
    if (!hist.ok()) {
      hist = FreshEntry(db, "histogram", attribute, "buckets=20");
    }
    if (hist.ok()) {
      Result<const Histogram*> h = hist.value().result.AsHistogram();
      if (h.ok()) {
        const Histogram& hg = **h;
        uint64_t n = hg.TotalCount();
        if (n > 1 && hg.below == 0 && hg.above == 0) {
          double mean = 0;
          for (size_t i = 0; i < hg.counts.size(); ++i) {
            mean += 0.5 * (hg.edges[i] + hg.edges[i + 1]) *
                    double(hg.counts[i]);
          }
          mean /= double(n);
          double ss = 0;
          for (size_t i = 0; i < hg.counts.size(); ++i) {
            double mid = 0.5 * (hg.edges[i] + hg.edges[i + 1]);
            ss += (mid - mean) * (mid - mean) * double(hg.counts[i]);
          }
          return Estimate(ss / double(n - 1),
                          "variance ~= histogram midpoint moment");
        }
      }
    }
    return NotFoundError("no rule derives variance");
  }

  if (function == "range") {
    Result<double> mn = FreshScalar(db, "min", attribute);
    Result<double> mx = FreshScalar(db, "max", attribute);
    if (mn.ok() && mx.ok()) {
      return Exact(mx.value() - mn.value(), "range = max - min");
    }
    return NotFoundError("no rule derives range");
  }

  if (function == "count") {
    Result<SummaryEntry> hist = FreshEntry(db, "histogram", attribute);
    if (!hist.ok()) {
      hist = FreshEntry(db, "histogram", attribute, "buckets=20");
    }
    if (hist.ok()) {
      Result<const Histogram*> h = hist.value().result.AsHistogram();
      if (h.ok()) {
        return Exact(double((*h)->TotalCount()),
                     "count = histogram total");
      }
    }
    // count = sum / mean (when the mean is nonzero).
    Result<double> sum = FreshScalar(db, "sum", attribute);
    Result<double> mean = FreshScalar(db, "mean", attribute);
    if (sum.ok() && mean.ok() && mean.value() != 0.0) {
      return Exact(sum.value() / mean.value(), "count = sum/mean");
    }
    return NotFoundError("no rule derives count");
  }

  if (function == "median" || (function == "quantile" &&
                               params.GetOr("p", -1.0) == 0.5)) {
    // median = quantile(p=0.5) = quartiles[1].
    if (function == "median") {
      Result<double> q = FreshScalar(db, "quantile", attribute, "p=0.5");
      if (q.ok()) return Exact(q.value(), "median = quantile(p=0.5)");
    } else {
      Result<double> med = FreshScalar(db, "median", attribute);
      if (med.ok()) return Exact(med.value(), "quantile(0.5) = median");
    }
    Result<SummaryEntry> quartiles = FreshEntry(db, "quartiles", attribute);
    if (quartiles.ok()) {
      Result<const std::vector<double>*> v =
          quartiles.value().result.AsVector();
      if (v.ok() && (*v)->size() == 3) {
        return Exact((**v)[1], "median = quartiles[1]");
      }
    }
    // Estimate from a histogram by locating the 50% mass point.
    Result<SummaryEntry> hist = FreshEntry(db, "histogram", attribute);
    if (!hist.ok()) {
      hist = FreshEntry(db, "histogram", attribute, "buckets=20");
    }
    if (hist.ok()) {
      Result<const Histogram*> h = hist.value().result.AsHistogram();
      if (h.ok()) {
        const Histogram& hg = **h;
        uint64_t total = hg.TotalCount();
        if (total > 0 && hg.below == 0 && hg.above == 0) {
          uint64_t half = total / 2;
          uint64_t acc = 0;
          for (size_t i = 0; i < hg.counts.size(); ++i) {
            if (acc + hg.counts[i] >= half) {
              double frac =
                  hg.counts[i] == 0
                      ? 0.5
                      : double(half - acc) / double(hg.counts[i]);
              double est = hg.edges[i] +
                           frac * (hg.edges[i + 1] - hg.edges[i]);
              return Estimate(est, "median ~= histogram 50% mass point");
            }
            acc += hg.counts[i];
          }
        }
      }
    }
    return NotFoundError("no rule derives median");
  }

  if (function == "min" || function == "max") {
    // Exact from quartile-covering histograms only when nothing spills.
    Result<SummaryEntry> hist = FreshEntry(db, "histogram", attribute);
    if (!hist.ok()) {
      hist = FreshEntry(db, "histogram", attribute, "buckets=20");
    }
    if (hist.ok()) {
      Result<const Histogram*> h = hist.value().result.AsHistogram();
      if (h.ok() && (*h)->below == 0 && (*h)->above == 0 &&
          !(*h)->edges.empty()) {
        // Auto-range histograms span exactly [min, max].
        double v = function == "min" ? (*h)->edges.front()
                                     : (*h)->edges.back();
        return Estimate(v, function + " ~= histogram range endpoint");
      }
    }
    return NotFoundError("no rule derives " + function);
  }

  (void)p;
  return NotFoundError("no inference rule for function " + function);
}

}  // namespace statdb

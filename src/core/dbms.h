#ifndef STATDB_CORE_DBMS_H_
#define STATDB_CORE_DBMS_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "causal/slo.h"
#include "causal/slow_query_log.h"
#include "causal/trace_context.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/attribute_index.h"
#include "core/inference.h"
#include "core/view.h"
#include "core/view_def.h"
#include "delta/comoment.h"
#include "delta/delta_buffer.h"
#include "delta/policy.h"
#include "fault/wal.h"
#include "flight/flight_recorder.h"
#include "flight/profiler.h"
#include "flight/timeseries.h"
#include "meta/catalog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/stored_table.h"
#include "rules/management_db.h"
#include "storage/storage_manager.h"
#include "summary/summary_db.h"

namespace statdb {

class ThreadPool;

namespace session {
class SessionManager;
struct SessionConfig;
}  // namespace session

/// Knobs of one query against a view's Summary Database.
struct QueryOptions {
  /// Serve a cached-but-stale value (the analyst said approximate answers
  /// are fine — "a change of one or two values has very little effect on
  /// the value of the median", §3.2).
  bool allow_stale = false;
  /// Bounded-staleness alternative: serve a stale entry only while the
  /// view has advanced at most this many versions past it ("the user
  /// should have the capability of communicating his wishes regarding
  /// the desired accuracy", §3.2). 0 = exact unless allow_stale.
  uint64_t max_version_lag = 0;
  /// Try the Database-Abstract inference rules before touching the data.
  bool allow_inference = false;
  /// Accept inexact inference results (estimates).
  bool allow_estimates = false;
  /// Insert a freshly computed result into the Summary Database.
  bool cache_result = true;
};

/// One `function(attribute; params)` request of a QueryMany batch.
struct QueryRequest {
  std::string function;
  std::string attribute;
  FunctionParams params;
};

/// Row filter of a QueryFiltered request, evaluated on the aggregated
/// attribute itself. Values are coerced to the attribute's declared type
/// (like index probes), then compared as doubles — so a NaN cell matches
/// only kAll, exactly as the materialized comparison would decide.
struct FilterPredicate {
  enum class Kind : uint8_t {
    kAll = 0,    // no filter
    kEqual = 1,  // cell == equal
    kRange = 2,  // lo <= cell <= hi
  };
  Kind kind = Kind::kAll;
  Value equal;
  Value lo;
  Value hi;

  static FilterPredicate All() { return {}; }
  static FilterPredicate Equal(Value v) {
    FilterPredicate p;
    p.kind = Kind::kEqual;
    p.equal = std::move(v);
    return p;
  }
  static FilterPredicate Range(Value lo, Value hi) {
    FilterPredicate p;
    p.kind = Kind::kRange;
    p.lo = std::move(lo);
    p.hi = std::move(hi);
    return p;
  }
};

/// Provenance of a query answer.
enum class AnswerSource : uint8_t {
  kCacheHit = 0,      // fresh Summary Database entry
  kStaleCacheHit = 1, // stale entry served under allow_stale
  kInferred = 2,      // derived from other cached entries
  kComputed = 3,      // full computation over the view column
};

struct QueryAnswer {
  SummaryResult result;
  AnswerSource source = AnswerSource::kComputed;
  bool exact = true;             // false for inference estimates
  std::string derivation;        // set for inferred answers
};

/// Outcome of CreateView: the view that should be used, and whether an
/// existing identical view was reused instead of re-materializing (§2.3).
struct ViewCreation {
  std::string name;
  bool reused = false;
};

/// Aggregate counters for one view's query/update traffic.
struct ViewTrafficStats {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t stale_hits = 0;
  uint64_t inferred = 0;
  uint64_t computed = 0;
  uint64_t updates = 0;
  uint64_t cells_changed = 0;
  uint64_t maintainer_applies = 0;
  uint64_t maintainer_rebuilds = 0;
  uint64_t eager_recomputes = 0;
  /// Reference pattern per attribute (§2.7: "'intelligent' access
  /// methods that interpret reference patterns to the view") — bumped on
  /// every query or update predicate touching the attribute.
  std::map<std::string, uint64_t> attribute_accesses;
};

/// The statistical DBMS of §3.2 (Fig. 3): a raw database on "tape",
/// per-analyst concrete views on "disk", a Summary Database per view,
/// and one Management Database driving maintenance.
///
/// Typical session:
///   StatisticalDbms dbms(...);
///   dbms.LoadRawDataSet("census", microdata);
///   auto view = dbms.CreateView("v1", def, MaintenancePolicy::kIncremental);
///   auto median = dbms.Query("v1", "median", "INCOME");   // computed+cached
///   median = dbms.Query("v1", "median", "INCOME");        // cache hit
///   dbms.Update("v1", {pred, "INCOME", nullptr, "mark outliers missing"});
///   median = dbms.Query("v1", "median", "INCOME");        // maintained
class StatisticalDbms {
 public:
  /// `storage` must outlive the DBMS and have devices named `tape_device`
  /// and `disk_device` mounted.
  StatisticalDbms(StorageManager* storage, std::string tape_device = "tape",
                  std::string disk_device = "disk");

  /// Detaches the flight recorder from the storage layer. Devices and
  /// buffer pools belong to the StorageManager and outlive this DBMS;
  /// without the detach a fault injected after destruction would chase
  /// a dangling pointer into the freed event ring.
  ~StatisticalDbms();

  StatisticalDbms(const StatisticalDbms&) = delete;
  StatisticalDbms& operator=(const StatisticalDbms&) = delete;

  // --- raw database -------------------------------------------------------

  /// Writes `data` to the tape-resident raw database and registers it.
  Status LoadRawDataSet(const std::string& name, const Table& data,
                        std::string description = "");

  // --- views ---------------------------------------------------------------

  /// Materializes a concrete view per `def` (reading the raw data set
  /// from tape, writing transposed to disk). If an identical definition
  /// was already materialized, returns that view instead (§2.3).
  Result<ViewCreation> CreateView(const std::string& name,
                                  const ViewDefinition& def,
                                  MaintenancePolicy policy);

  Result<ConcreteView*> GetView(const std::string& name);
  std::vector<std::string> ViewNames() const { return mdb_.ViewNames(); }

  /// Drops a concrete view: its Summary Database, indexes, maintainers,
  /// control record and catalog entry all go. The simulated disk pages
  /// are not reclaimed (the device has no free list), matching how a
  /// 1982 installation would reclaim space offline.
  Status DropView(const std::string& name);

  /// Re-runs a view's pipeline from tape (the cost CreateView's reuse
  /// path avoids; also used by benchmarks).
  Result<Table> RematerializeFromTape(const std::string& view_name);

  // --- queries -------------------------------------------------------------

  /// Evaluates `function(attribute; params)` on the view, consulting the
  /// Summary Database first. A computed answer is cached unless
  /// opts.cache_result is false. Rejects non-summarizable attributes
  /// (category codes) per the view's schema metadata.
  Result<QueryAnswer> Query(const std::string& view,
                            const std::string& function,
                            const std::string& attribute,
                            const FunctionParams& params = {},
                            const QueryOptions& opts = {});

  /// Parallel variant of Query: the column is split into page-aligned
  /// chunks scanned by `workers` threads, whose mergeable partial states
  /// (Welford moments, min/max, per-shard value counts, frozen-edge
  /// histograms) are combined at the join barrier. Cache consultation,
  /// staleness policy, inference and result caching behave exactly like
  /// Query; count/min/max answers are bit-identical to the serial path
  /// and floating-point accumulations agree to rounding. Order-dependent
  /// functions (median, quantiles, ...) gather the column shard-parallel
  /// and finish sequentially on the identical value sequence, so their
  /// answers are bit-identical too.
  Result<QueryAnswer> QueryParallel(const std::string& view,
                                    const std::string& function,
                                    const std::string& attribute,
                                    const FunctionParams& params = {},
                                    const QueryOptions& opts = {},
                                    size_t workers = 4);

  /// Answers N requests in one batch. Requests that the Summary Database
  /// (or inference) can satisfy are answered without touching the data;
  /// the rest are grouped by attribute and each attribute is scanned
  /// ONCE in parallel, every requested statistic finishing from the same
  /// merged partial states. Computed results are inserted into the
  /// Summary Database exactly as serial Query would insert them (same
  /// keys, versions, incremental-maintainer arming). Duplicate
  /// (function, attribute, params) requests are computed once. Fails on
  /// the first request whose statistic is undefined (e.g. the mean of an
  /// empty column), like the serial path would.
  Result<std::vector<QueryAnswer>> QueryMany(
      const std::string& view, const std::vector<QueryRequest>& requests,
      const QueryOptions& opts = {}, size_t workers = 4);

  /// Parallel bivariate statistics for "correlation", "covariance" and
  /// "regression": per-shard co-moment states (Chan et al.) merged at
  /// the barrier. "crosstab"/"chi2_independence" fall back to the serial
  /// path. Caching behaves exactly like QueryBivariate.
  Result<QueryAnswer> QueryBivariateParallel(const std::string& view,
                                             const std::string& function,
                                             const std::string& attr_a,
                                             const std::string& attr_b,
                                             const QueryOptions& opts = {},
                                             size_t workers = 4);

  /// Bivariate statistics cached under multi-attribute Summary keys:
  /// "correlation" and "covariance" (scalar), "regression" (linear
  /// model of b ~ a), "chi2_independence" (vector [stat, dof, p] over
  /// the a x b contingency table), "crosstab" (the table itself).
  /// Updates to *either* attribute invalidate the entry through its
  /// reference record.
  Result<QueryAnswer> QueryBivariate(const std::string& view,
                                     const std::string& function,
                                     const std::string& attr_a,
                                     const std::string& attr_b,
                                     const QueryOptions& opts = {});

  /// Compares `value_attr` between the rows where `category_attr`
  /// equals `code_a` vs `code_b` with Welch's t-test; the result vector
  /// [t, dof, p] is cached under a multi-attribute key.
  Result<QueryAnswer> QueryGroupCompare(const std::string& view,
                                        const std::string& value_attr,
                                        const std::string& category_attr,
                                        int64_t code_a, int64_t code_b,
                                        const QueryOptions& opts = {});

  /// Builds a secondary index on a view attribute (§2.3's "auxiliary
  /// storage structures such as indices"); it is maintained under
  /// predicate updates and rollback, and rebuilt by reorganization.
  Status CreateAttributeIndex(const std::string& view,
                              const std::string& attribute);
  bool HasAttributeIndex(const std::string& view,
                         const std::string& attribute);

  /// Filtered aggregate with predicate/aggregate pushdown (DESIGN.md
  /// §14, generalizing the §4.3 scan-offload idea): evaluates
  /// `function` over the rows of `attribute` that satisfy `pred`. When
  /// the attribute has an RLE sidecar and the function's partial state
  /// is mergeable, the predicate is evaluated once per run and matching
  /// runs fold into the aggregate in O(1) each — no row is ever
  /// materialized. Otherwise the column is read and filtered cell-wise
  /// (identical answers, by the parity contract). Filtered results are
  /// never cached in the Summary Database: the predicate is not part of
  /// any summary key.
  Result<QueryAnswer> QueryFiltered(const std::string& view,
                                    const std::string& function,
                                    const std::string& attribute,
                                    const FilterPredicate& pred,
                                    const FunctionParams& params = {});

  /// Kill switch for the compressed-domain planner choice (parity tests
  /// flip it to force the materialized path on the same data). On by
  /// default; affects Query/QueryParallel/QueryMany/QueryFiltered and
  /// the CountWhere* pushdown.
  void set_compressed_scan_enabled(bool on) { compressed_scan_enabled_ = on; }
  bool compressed_scan_enabled() const { return compressed_scan_enabled_; }

  /// Rows whose `attribute` equals `v` — via the index when one exists,
  /// by column scan otherwise (compressed-domain over the RLE sidecar
  /// when one is attached). `used_index` (optional) reports which.
  Result<uint64_t> CountWhereEqual(const std::string& view,
                                   const std::string& attribute,
                                   const Value& v,
                                   bool* used_index = nullptr);

  /// Rows with lo <= attribute <= hi (nulls excluded), indexed if
  /// possible.
  Result<uint64_t> CountWhereInRange(const std::string& view,
                                     const std::string& attribute,
                                     const Value& lo, const Value& hi,
                                     bool* used_index = nullptr);

  /// §2.7: physically reorganizes a view by sorting its rows on
  /// `sort_attrs` (e.g. the hottest category attributes, clustering
  /// them for compression and locality). Cached summaries stay valid —
  /// the column multisets are unchanged — but the update history's row
  /// coordinates would dangle, so reorganization establishes a new
  /// baseline: the history is cleared and the version reset to 0.
  Status ReorganizeView(const std::string& view,
                        const std::vector<std::string>& sort_attrs);

  /// The attribute an "intelligent access method" would cluster on:
  /// the most-referenced category attribute, or NOT_FOUND if none has
  /// been touched yet.
  Result<std::string> RecommendClusterAttribute(const std::string& view);

  /// Computes and caches the §3.2 standard battery (min, max, mean,
  /// median, quartiles, mode, distinct count, histogram) for an
  /// attribute in one column read.
  Status ComputeStandardSummary(const std::string& view,
                                const std::string& attribute);

  /// Attaches a free-text note about the data set to the Summary DB.
  Status AnnotateAttribute(const std::string& view,
                           const std::string& attribute, std::string note);

  // --- updates & maintenance ----------------------------------------------

  /// Applies a predicate update to the view, logs it in the update
  /// history, and maintains the Summary Database per the view's policy.
  /// Derived columns with kLocal rules are fixed in place; kRegenerate
  /// columns are marked out of date. Returns the number of cells changed.
  Result<uint64_t> Update(const std::string& view, const UpdateSpec& spec);

  /// Rolls the view back to `target_version` using the update history;
  /// cached summaries on the touched attributes are invalidated.
  Status Rollback(const std::string& view, uint64_t target_version);

  // --- delta-batched maintenance (src/delta, DESIGN.md §16) ----------------

  /// Explicit flush barrier: applies every pending delta of the view in
  /// one amortized pass per attribute, leaving the summary cache fully
  /// caught up. Query paths call the per-attribute equivalent
  /// automatically (flush-before-serve), so this is for barriers the
  /// engine cannot see — benchmarks, checkpoints, tests.
  Status FlushDeltas(const std::string& view);

  /// Pending (buffered, unflushed) deltas across the view's attributes.
  Result<uint64_t> PendingDeltas(const std::string& view);

  /// Tuning knobs of the delta engine. Strategy state already built
  /// under the old config is kept; it re-converges under the new bands.
  void set_delta_config(const delta::DeltaConfig& config) {
    delta_config_ = config;
  }
  const delta::DeltaConfig& delta_config() const { return delta_config_; }

  /// The per-(view, attribute) strategy state machine (introspection;
  /// tests override strategies through set_delta_config instead).
  delta::PolicyController& delta_policy() { return delta_policy_; }

  /// Adds a derived column and fills it (§2.2: capture "the results of a
  /// time-consuming calculation that are to be used later").
  Status AddDerivedColumn(const std::string& view, DerivedColumnDef def);

  /// Regenerates one out-of-date kRegenerate column now.
  Status RegenerateDerivedColumn(const std::string& view,
                                 const std::string& column);

  /// Reads a column, transparently regenerating it first if it is an
  /// out-of-date derived column.
  Result<std::vector<Value>> ReadColumn(const std::string& view,
                                        const std::string& column);

  // --- durability & recovery (src/fault, DESIGN.md §11) --------------------

  /// Arms write-ahead redo logging on the device named `wal_device`
  /// (which must be mounted on the storage manager, typically via
  /// AdoptDevice). From here on every mutation appends a commit record —
  /// page images + a manifest of the in-memory state — to the log and
  /// only then writes pages in place (force-at-commit); the disk pool
  /// switches to no-steal so uncommitted pages never reach the platter.
  /// Call Recover() next when reopening an existing installation.
  Status EnableDurability(const std::string& wal_device = "wal");

  /// Replays the redo log against the disk device: every complete record's
  /// page images are rewritten in order (idempotent — full images), the
  /// in-memory state (catalog, raw tables, views, summaries, management
  /// database) is rebuilt from the last record's manifest, and a torn
  /// tail is discarded. If a tail was torn, the paper's §4.3 fallback
  /// marks the hinted attribute's cached summaries stale (all entries,
  /// when even the hint was lost). Idempotent: a second Recover() is a
  /// no-op rebuild of the same state.
  Status Recover();

  bool durability_enabled() const { return wal_ != nullptr; }
  /// Read-only degraded mode: entered when a device failure outlives the
  /// bounded retries. Queries still run; mutations fail fast.
  bool degraded() const {
    MutexLock lock(session_mu_);
    return degraded_;
  }
  /// By value: the reason string is rewritten on the mutation path, so a
  /// reference would be a torn read under concurrent queries.
  std::string degraded_reason() const {
    MutexLock lock(session_mu_);
    return degraded_reason_;
  }
  uint64_t last_committed_lsn() const {
    return wal_ == nullptr ? 0 : wal_->last_lsn();
  }
  RedoLog* redo_log() { return wal_.get(); }
  uint64_t recoveries() const {
    MutexLock lock(session_mu_);
    return recoveries_;
  }

  // --- introspection -------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  ManagementDatabase& management_db() { return mdb_; }
  Result<SummaryDatabase*> GetSummaryDb(const std::string& view);
  Result<const ViewTrafficStats*> GetTrafficStats(
      const std::string& view) const;
  StorageManager* storage() { return storage_; }
  const std::string& tape_device_name() const { return tape_device_; }
  const std::string& disk_device_name() const { return disk_device_; }

  // --- observability (src/obs, DESIGN.md §10) ------------------------------

  /// The DBMS-wide metrics registry: query latency, answer provenance,
  /// and thread-pool behavior live here; per-view/per-device stats
  /// structs are mirrored in at DumpMetrics time.
  MetricsRegistry& metrics() { return metrics_; }

  /// One JSON document covering every cost-model signal: per-view
  /// summary-cache hit/served/miss rates, per-view query/update traffic
  /// and maintainer apply-vs-rebuild counts, buffer-pool behavior and
  /// simulated device I/O for the tape and disk devices, and the
  /// registry (thread-pool queue depth/task latency, query latency).
  std::string DumpMetrics();

  /// Attaches a per-query trace sink: every Query / QueryParallel /
  /// QueryMany / QueryBivariateParallel call emits a QueryTrace of its
  /// phase spans. With no sink (the default) the query paths skip all
  /// clock reads and allocate nothing for tracing. The sink must be
  /// thread-safe if queries run concurrently, and must outlive its
  /// attachment. nullptr detaches.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }
  TraceSink* trace_sink() const { return trace_sink_; }

  // --- causal tracing, SLOs & the slow-query log (DESIGN.md §17) -----------

  /// Per-query-class tail-latency SLO tracker. Every public query
  /// wrapper records into its class ("query", "query_parallel",
  /// "query_many", "query_filtered", "bivariate", "group_compare"), and
  /// the mutation paths into "update" / "rollback".
  causal::SloTracker& slo() { return slo_; }
  std::string DumpSloJson() const { return slo_.DumpJson(); }

  /// Bounded log of threshold-exceeding operations: the full QueryTrace
  /// joined with the flight events carrying its trace_id. Disabled by
  /// default (capturing needs traces built on every query); enabled by
  /// slow_query_log().set_enabled(true) or the STATDB_SLOWLOG_DUMP
  /// environment variable, which also arms a one-shot incident dump on
  /// the first degraded-mode entry.
  causal::SlowQueryLog& slow_query_log() { return slow_log_; }
  std::string DumpSlowLogJson(const std::string& reason = "manual") const {
    return slow_log_.DumpJson(reason);
  }

  /// Chrome trace-event (catapult) export of the slow-query log's
  /// captured traces laid against the flight window — open the result
  /// in chrome://tracing or Perfetto. `trace_id_filter` != 0 restricts
  /// to one operation (the shell's `trace <id>`).
  std::string DumpChromeTrace(uint64_t trace_id_filter = 0);

  // --- flight recorder, profiler & timeseries (src/flight, §12) -----------

  /// The black box: a lock-light ring of the last N structured events
  /// (query begin/end, cache verdicts, maintainer arm/fire, WAL commits,
  /// injected faults, I/O retries, recovery steps, degraded/DATA_LOSS
  /// flips). Enabled by default; recording costs a few relaxed stores.
  /// The DBMS constructor attaches it to the tape/disk buffer pools and
  /// devices; EnableDurability extends that to the WAL device. If the
  /// STATDB_FLIGHT_DUMP environment variable names a path at
  /// construction, the first DATA_LOSS or degraded-mode entry writes the
  /// event window there automatically (once).
  FlightRecorder& flight() { return flight_; }
  std::string DumpFlightJson(const std::string& reason = "manual") {
    return flight_.DumpJson(reason);
  }

  /// The §4.3 decision input: per-(function, attribute) and per-attribute
  /// access/update heatmaps, fed exactly (not sampled) from the query and
  /// update paths.
  WorkloadProfiler& workload_profiler() { return profiler_; }
  std::string WorkloadReport() { return profiler_.ReportJson(); }
  std::string WorkloadReportText(size_t top_n = 10) {
    return profiler_.ReportText(top_n);
  }

  /// Bounded window of metric snapshots; deltas between consecutive
  /// points carry derived rates (summary hit rate, scan MB/s, WAL
  /// bytes/commit). Points are taken by TickTimeseries() — manually, or
  /// automatically every `every_n_mutations` successful mutations after
  /// EnableTimeseries (which also takes the baseline point immediately;
  /// 0 switches back to manual ticks only).
  MetricsTimeseries& timeseries() { return timeseries_; }
  void EnableTimeseries(uint64_t every_n_mutations);
  void TickTimeseries();
  std::string DumpTimeseriesJson() { return timeseries_.DumpJson(); }

  /// Prometheus text exposition: takes a fresh snapshot (pushing it into
  /// the timeseries window, as a scrape should) and renders it.
  std::string ExposeText();

  /// Audit-after-update: when on, every successful Update/Rollback ends
  /// with a full DbAuditor pass over the touched view (structure + the
  /// differential summary-vs-view oracle) and fails with DATA_LOSS if the
  /// maintenance rules left the cache incoherent. Defaults to on when
  /// built with -DSTATDB_AUDIT=ON, off otherwise; tests may force it
  /// either way in any build.
  void set_audit_after_update(bool on) { audit_after_update_ = on; }
  bool audit_after_update() const { return audit_after_update_; }

  // --- multi-analyst sessions (src/session, DESIGN.md §15) -----------------

  /// Turns on the snapshot-isolation session layer: every existing view
  /// is registered with the MVCC routing table, and from here on each
  /// mutation path runs the capture → block → grace → publish protocol
  /// so pinned readers never block on (or race with) writers. Idempotent;
  /// returns the manager. Call before opening sessions.
  Result<session::SessionManager*> EnableSessions(
      const session::SessionConfig& config);

  /// The session layer, or nullptr when EnableSessions was never called.
  session::SessionManager* sessions() { return sessions_.get(); }

  /// The meta-data gate shared by Query/QueryMany and the session query
  /// path: numeric only, and no order statistics of category codes
  /// (§3.2). Public so Session can apply the identical rule to the
  /// schema entry at its pinned seq.
  static Status CheckQueryable(const Schema& schema,
                               const std::string& function,
                               const std::string& attribute);

 private:
  struct ViewState {
    std::unique_ptr<ConcreteView> view;
    std::unique_ptr<SummaryDatabase> summary;
    /// Live maintainers keyed by encoded SummaryKey (kIncremental only).
    std::map<std::string, std::unique_ptr<IncrementalMaintainer>>
        maintainers;
    /// Secondary indexes keyed by attribute name.
    std::map<std::string, std::unique_ptr<AttributeIndex>> indexes;
    /// Pending (unflushed) update deltas per attribute — the write side
    /// of the delta-batched maintenance engine (src/delta, §16).
    delta::DeltaBuffer deltas;
    /// Bivariate comoment maintainers keyed by encoded SummaryKey
    /// (kIncremental only), peers of `maintainers`.
    std::map<std::string, std::unique_ptr<delta::ComomentMaintainer>>
        comaintainers;
    ViewTrafficStats traffic;
  };

  /// Coerces a probe value to an attribute's declared type so index
  /// lookups compare like stored cells.
  static Result<Value> CoerceToAttribute(const Schema& schema,
                                         const std::string& attribute,
                                         const Value& v);

  /// Folds `changes` on `attribute` into that attribute's index, if any.
  Status MaintainIndexes(ViewState* state, const std::string& attribute,
                         const std::vector<CellChange>& changes);

  Result<ViewState*> GetState(const std::string& view);

  /// Runs the auditor over `view` when audit-after-update is on;
  /// propagates its DATA_LOSS verdict so a buggy maintenance rule fails
  /// the update that exposed it instead of poisoning later queries.
  Status MaybeAuditAfterUpdate(const std::string& view);

  /// Reads the raw table for `dataset` from tape.
  Result<Table> ReadRawFromTape(const std::string& dataset);

  // --- durability plumbing (core/recovery.cc) ------------------------------

  /// Rejects mutations in degraded mode; OK otherwise.
  Status GuardMutable() const;

  /// Flips to read-only degraded mode (first reason wins) and bumps the
  /// obs counter.
  void EnterDegraded(const std::string& reason);

  /// Commit protocol, a no-op without durability: stamp the next LSN on
  /// the disk pool's dirty pages, append one WAL record carrying their
  /// images + the current manifest, then write the pages in place.
  /// `force` appends even with zero dirty pages (metadata-only mutations
  /// like DropView must still reach the log). Any failure flips the DBMS
  /// into degraded mode before the error propagates.
  Status CommitDurable(const std::string& attr_hint, bool force);

  /// Query-path commit: skips when idle, swallows the error after
  /// degrading (the computed answer is correct; only its caching lost
  /// durability).
  void CommitAfterQuery(const std::string& attr_hint);

  /// Serializes the whole recoverable in-memory state (catalog, raw
  /// tables, views + summaries, management database).
  Result<std::vector<uint8_t>> BuildManifest() const;

  /// Rebuilds in-memory state from a manifest, re-attaching every file
  /// structure to its on-device pages. Replaces all current state.
  Status ApplyManifest(const std::vector<uint8_t>& manifest);

  /// Cache / staleness / inference consultation shared by Query and
  /// QueryMany. Fills `*answer` and returns true when the request is
  /// satisfied without computation; bumps the traffic counters it
  /// consumes. `trace` (nullable) receives cache-probe / staleness-gate /
  /// inference spans.
  /// Exact serves flush the attribute's pending deltas first
  /// (flush-before-serve, §16); allow_stale accepts the un-flushed entry
  /// the way it accepts any stale one.
  Result<bool> TryAnswerWithoutComputing(const std::string& view,
                                         ViewState* state,
                                         const SummaryKey& key,
                                         const std::string& function,
                                         const std::string& attribute,
                                         const FunctionParams& params,
                                         const QueryOptions& opts,
                                         QueryAnswer* answer,
                                         QueryTrace* trace);

  /// Drains `attribute`'s pending deltas through the flush engine and
  /// folds the effort into the traffic counters. No-op when idle.
  Status FlushAttributeDeltas(const std::string& view_name, ViewState* state,
                              const std::string& attribute);

  /// FlushAttributeDeltas over every attribute with pending deltas —
  /// the whole-view barrier (explicit FlushDeltas, audits, reorganize).
  Status FlushViewDeltas(const std::string& view_name, ViewState* state);

  /// Caches a computed result and arms an incremental maintainer when
  /// the view's policy wants one — the common tail of the serial and
  /// parallel compute paths. `data` is the full column (maintainer
  /// initialization); ignored under other policies. `trace` (nullable)
  /// receives summary-insert / maintainer-arm spans.
  Status CacheComputedResult(const std::string& view, ViewState* state,
                             const SummaryKey& key,
                             const SummaryResult& result,
                             const std::vector<double>& data,
                             QueryTrace* trace);

  /// Bodies of the public query entry points, with tracing threaded
  /// through. The public wrappers own trace construction, the total
  /// timer, the latency histogram and sink emission.
  Result<QueryAnswer> QueryImpl(const std::string& view,
                                const std::string& function,
                                const std::string& attribute,
                                const FunctionParams& params,
                                const QueryOptions& opts, QueryTrace* trace);
  Result<std::vector<QueryAnswer>> QueryManyImpl(
      const std::string& view, const std::vector<QueryRequest>& requests,
      const QueryOptions& opts, size_t workers, QueryTrace* trace);
  Result<QueryAnswer> QueryBivariateParallelImpl(
      const std::string& view, const std::string& function,
      const std::string& attr_a, const std::string& attr_b,
      const QueryOptions& opts, size_t workers, QueryTrace* trace);
  Result<QueryAnswer> QueryFilteredImpl(const std::string& view,
                                        const std::string& function,
                                        const std::string& attribute,
                                        const FilterPredicate& pred,
                                        const FunctionParams& params,
                                        QueryTrace* trace);
  Result<QueryAnswer> QueryBivariateImpl(const std::string& view,
                                         const std::string& function,
                                         const std::string& attr_a,
                                         const std::string& attr_b,
                                         const QueryOptions& opts,
                                         QueryTrace* trace);
  Result<QueryAnswer> QueryGroupCompareImpl(const std::string& view,
                                            const std::string& value_attr,
                                            const std::string& category_attr,
                                            int64_t code_a, int64_t code_b,
                                            const QueryOptions& opts,
                                            QueryTrace* trace);

  /// Update/Rollback bodies; the public wrappers mint the mutation's
  /// causal context and record its SLO sample.
  Result<uint64_t> UpdateUnderContext(const std::string& view,
                                      const UpdateSpec& spec);
  Status RollbackUnderContext(const std::string& view,
                              uint64_t target_version);

  /// Recover() body; the public wrapper owns the "recover"-labeled trace
  /// whose spans (WAL scan, redo replay, manifest apply, fallback
  /// invalidation) `trace` (nullable) receives.
  Status RecoverImpl(QueryTrace* trace);

  /// True when the query wrappers should build a QueryTrace: a sink is
  /// attached, or the slow-query log wants completed traces to capture.
  bool WantTrace() const {
    return trace_sink_ != nullptr || slow_log_.enabled();
  }

  /// Records the query latency + outcome counters, the query class's
  /// SLO sample, emits `trace` (if any) to the sink, and captures a
  /// slow-log entry when the operation crossed the threshold — the
  /// shared tail of every public query wrapper. Exactly one call per
  /// wrapper invocation, success or error.
  void EmitQueryObs(const TraceTimer& timer, QueryTrace* trace,
                    TraceOutcome outcome, const std::string& query_class);

  /// Feeds one finished request to the flight recorder (kQueryEnd,
  /// stamped with `ctx`) and the workload profiler — called from the
  /// public query wrappers with the exact view/function/attribute
  /// strings.
  void NoteQueryOutcome(const causal::TraceContext& ctx,
                        const std::string& view, const std::string& function,
                        const std::string& attribute, TraceOutcome outcome,
                        double wall_ms);

  /// One named-scalar photograph of every counter the timeseries tracks:
  /// the registry snapshot plus the canonical summary.*/io.*/wal.* keys
  /// the rate derivation consumes.
  StatPoint TakeStatSnapshot();

  /// Mutation-path hook: bumps the mutation sequence and auto-ticks the
  /// timeseries when EnableTimeseries armed a cadence.
  void MaybeTickTimeseries();

  /// Folds a (quiescent) pool's counters into the registry after a
  /// parallel query finishes with it.
  void FoldPoolStats(const ThreadPool& pool);

  /// Full computation of function(attribute) over the view column.
  Result<SummaryResult> ComputeOnView(ViewState* state,
                                      const std::string& function,
                                      const std::string& attribute,
                                      const FunctionParams& params);

  /// Summary-Database upkeep after `changes` landed on `attribute`.
  Status MaintainSummaries(const std::string& view_name, ViewState* state,
                           const std::string& attribute,
                           const std::vector<CellChange>& changes);

  /// Derived-column upkeep after `changes` landed on `attribute`.
  /// kLocal fixes land in `extra_changes` so they join the history entry.
  Status MaintainDerivedColumns(const std::string& view_name,
                                ViewState* state,
                                const std::string& attribute,
                                const std::vector<CellChange>& changes,
                                std::vector<CellChange>* extra_changes);

  StorageManager* storage_;
  std::string tape_device_;
  std::string disk_device_;
  Catalog catalog_;
  ManagementDatabase mdb_;
  std::map<std::string, std::unique_ptr<StoredRowTable>> raw_tables_;
  std::map<std::string, ViewState> views_;

  std::unique_ptr<RedoLog> wal_;  // nullptr = durability off
  std::string wal_device_name_;

  /// Latches the small pieces of session state that concurrent readers
  /// (DumpMetrics, the degraded/recoveries accessors) observe while the
  /// mutation path writes them. Leaf lock: never held across I/O, WAL
  /// appends, or calls into other latched subsystems.
  mutable Mutex session_mu_;
  bool degraded_ STATDB_GUARDED_BY(session_mu_) = false;
  std::string degraded_reason_ STATDB_GUARDED_BY(session_mu_);
  uint64_t recoveries_ STATDB_GUARDED_BY(session_mu_) = 0;

  MetricsRegistry metrics_;
  /// Declared after metrics_: the tracker registers its class
  /// histograms there.
  causal::SloTracker slo_{&metrics_};
  causal::SlowQueryLog slow_log_;
  FlightRecorder flight_;
  WorkloadProfiler profiler_;
  MetricsTimeseries timeseries_;
  // 0 = manual TickTimeseries only
  uint64_t ts_every_n_mutations_ STATDB_GUARDED_BY(session_mu_) = 0;
  uint64_t ts_mutations_since_tick_ STATDB_GUARDED_BY(session_mu_) = 0;
  // lifetime successful mutations
  uint64_t mutation_seq_ STATDB_GUARDED_BY(session_mu_) = 0;
  TraceSink* trace_sink_ = nullptr;  // not owned
  /// Planner kill switch: compressed-domain scans over RLE sidecars.
  bool compressed_scan_enabled_ = true;
  // Instruments resolved once at construction; bumped lock-free after.
  LatencyHistogram* obs_query_ms_ = nullptr;
  LatencyHistogram* obs_pool_task_ms_ = nullptr;
  Counter* obs_outcomes_[6] = {};  // indexed by TraceOutcome
  // Which scan path the planner chose (computed answers only).
  Counter* obs_scan_compressed_ = nullptr;
  Counter* obs_scan_materialized_ = nullptr;
  Counter* obs_pool_submitted_ = nullptr;
  Counter* obs_pool_executed_ = nullptr;
  Counter* obs_pool_rejected_ = nullptr;
  Gauge* obs_pool_queue_max_ = nullptr;
  Gauge* obs_pool_task_ms_total_ = nullptr;
  // Delta engine instruments (dbms.delta.*).
  Counter* obs_delta_buffered_ = nullptr;
  Counter* obs_delta_flushed_ = nullptr;
  Counter* obs_delta_policy_switches_ = nullptr;

  /// Delta engine knobs + the per-(view, attribute) strategy machine.
  delta::DeltaConfig delta_config_;
  delta::PolicyController delta_policy_;
#ifdef STATDB_AUDIT
  bool audit_after_update_ = true;
#else
  bool audit_after_update_ = false;
#endif

  /// Snapshot-isolation session layer; nullptr until EnableSessions.
  /// unique_ptr of an incomplete type: the destructor is in dbms.cc,
  /// which includes session/session.h.
  std::unique_ptr<session::SessionManager> sessions_;
};

}  // namespace statdb

#endif  // STATDB_CORE_DBMS_H_

#ifndef STATDB_CORE_MANAGEMENT_SERDE_H_
#define STATDB_CORE_MANAGEMENT_SERDE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rules/management_db.h"

namespace statdb {

/// Persistence of the Management Database's control information —
/// §3.2 makes it "a repository for ... rules for manipulating
/// information in the Summary Databases, view definitions, update
/// histories of the views, and other control information", which must
/// survive across sessions. Function implementations and incremental
/// rules are code and are reinstalled by FunctionRegistry::WithBuiltins;
/// everything data-shaped round-trips here: view records (name,
/// canonical definition, version, policy), derived-column rules
/// (including their expressions) and full update histories.
Result<std::vector<uint8_t>> SerializeManagementState(
    const ManagementDatabase& mdb);

/// Restores serialized state into a fresh ManagementDatabase (which must
/// contain no views yet).
Status RestoreManagementState(const std::vector<uint8_t>& bytes,
                              ManagementDatabase* mdb);

}  // namespace statdb

#endif  // STATDB_CORE_MANAGEMENT_SERDE_H_

#ifndef STATDB_EXEC_CHUNKED_SCANNER_H_
#define STATDB_EXEC_CHUNKED_SCANNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/partial_stats.h"
#include "exec/thread_pool.h"

namespace statdb {

/// Half-open row range [begin, end) assigned to one scan task.
struct ScanChunk {
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// Splits [0, rows) into up to `num_chunks` contiguous ranges whose
/// boundaries fall on multiples of `cells_per_page`, so no two chunks
/// share a storage page and each worker's reads are whole-page. Returns
/// fewer (possibly zero) chunks when the column is small.
std::vector<ScanChunk> SplitPageAligned(uint64_t rows, size_t cells_per_page,
                                        size_t num_chunks);

/// Reads the non-missing numeric cells of rows [begin, end) of one
/// column, in row order. Must be safe to call from multiple threads
/// concurrently (ConcreteView::ReadNumericRange is the canonical
/// binding). Kept as a callback so the execution layer stays below
/// core/ in the dependency DAG.
using ColumnRangeReader =
    std::function<Result<std::vector<double>>(uint64_t begin, uint64_t end)>;

/// Reads the row-aligned numeric pairs of rows [begin, end) of two
/// columns, dropping pairs with either cell missing (pairwise deletion,
/// matching the serial bivariate path).
using PairRangeReader = std::function<Status(
    uint64_t begin, uint64_t end, std::vector<double>* xs,
    std::vector<double>* ys)>;

/// What a parallel column scan should accumulate beyond the always-on
/// DescriptiveStats.
struct ColumnScanSpec {
  /// Build the per-shard value-count maps (mode / distinct / histogram).
  bool want_counts = false;
  /// Keep the column values themselves (order-dependent functions —
  /// median, quantiles — and incremental-maintainer arming need them).
  /// Chunks are concatenated in row order, so `values` is bit-identical
  /// to the serial ReadNumericColumn result.
  bool keep_values = false;
  /// Fill ColumnScanResult::chunk_stats (per-chunk wall time and rows)
  /// for query tracing. Off by default so the untraced hot path pays no
  /// clock reads.
  bool time_chunks = false;
};

/// Wall time and volume of one scan task (spec.time_chunks only). Each
/// task writes its own pre-sized slot, so no synchronization is needed
/// beyond the pool's join barrier.
struct ChunkScanStat {
  uint64_t rows = 0;    // non-missing cells this chunk yielded
  double wall_ms = 0;   // read + fold wall time on the worker
};

/// Merged result of one parallel pass over a column.
struct ColumnScanResult {
  DescriptiveStats desc;  // count/sum/mean/m2/min/max, merged pairwise
  ValueCounts counts;     // populated when spec.want_counts
  std::vector<double> values;  // populated when spec.keep_values
  size_t chunks = 0;           // how many scan tasks actually ran
  std::vector<ChunkScanStat> chunk_stats;  // spec.time_chunks only
};

/// Splits one view column into page-aligned chunks, scans them on
/// `pool`'s workers (each folding its rows into private partial states),
/// and merges the partials in chunk order at the join barrier. With a
/// null pool (or a single chunk) the scan runs inline on the caller.
Result<ColumnScanResult> ParallelScanColumn(uint64_t rows,
                                            size_t cells_per_page,
                                            const ColumnRangeReader& reader,
                                            const ColumnScanSpec& spec,
                                            ThreadPool* pool);

/// Same shape for a two-column pass: per-chunk co-moment states merged in
/// chunk order. Used by the parallel bivariate path (correlation,
/// covariance, regression).
Result<ComomentStats> ParallelScanPairs(uint64_t rows, size_t cells_per_page,
                                        const PairRangeReader& reader,
                                        ThreadPool* pool);

}  // namespace statdb

#endif  // STATDB_EXEC_CHUNKED_SCANNER_H_

#ifndef STATDB_EXEC_PARTIAL_STATS_H_
#define STATDB_EXEC_PARTIAL_STATS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/regression.h"

namespace statdb {

/// Mergeable partial states for shard-parallel statistics.
///
/// The paper's workload is whole-column statistics over transposed files;
/// almost all of its standard battery decomposes into per-shard partial
/// states combined once at a barrier (MADlib-style two-phase
/// aggregation). The univariate pieces ride on DescriptiveStats::Merge
/// and Histogram::Merge (src/stats); this header adds the bivariate
/// co-moment state and the per-shard value-count map for mode/distinct.

/// Sufficient statistics of a paired numeric sample: counts, means,
/// centered second moments and the co-moment sum((x-mx)(y-my)). Enough to
/// finish covariance, Pearson r and a simple linear regression without a
/// second pass, and mergeable across shards via the pairwise update of
/// Chan/Golub/LeVeque (the same algebra DescriptiveStats::Merge uses).
struct ComomentStats {
  uint64_t n = 0;
  double mean_x = 0;
  double mean_y = 0;
  double m2x = 0;  // sum (x - mean_x)^2
  double m2y = 0;  // sum (y - mean_y)^2
  double cxy = 0;  // sum (x - mean_x)(y - mean_y)

  /// Folds one (x, y) pair into the running state.
  void Add(double x, double y);

  /// Folds another shard's state into this one (commutative up to FP
  /// rounding; exact on counts).
  void Merge(const ComomentStats& o);

  /// Finishers, mirroring the serial functions' domain errors so the
  /// parallel path fails exactly where the serial path would.
  Result<double> Covariance() const;  // n-1 normalization
  Result<double> PearsonR() const;
  Result<LinearFit> Fit() const;  // y ~ x
};

/// Computes ComomentStats over two equal-length columns serially (the
/// per-shard leaf computation, also used by tests as the reference).
ComomentStats ComputeComoments(const std::vector<double>& x,
                               const std::vector<double>& y);

/// Per-shard value-frequency map for mode / distinct-count. Hash-keyed on
/// the exact double bit pattern (column data; no NaNs by construction),
/// merged by adding counts at the barrier.
///
/// Internally hash-partitioned into kShards sub-maps: any given value
/// lands in the same shard of every ValueCounts, so two states merge
/// shard-by-shard with no cross-shard traffic. That lets the scan
/// barrier parallelize the merge itself (one task per shard) — on a
/// mostly-distinct column the merge is as expensive as the scan, and a
/// single-map merge would serialize it (Amdahl) no matter how many
/// workers scanned.
struct ValueCounts {
  static constexpr size_t kShards = 16;
  // statdb-lint: allow(double-keyed-map) — exact-value frequency table
  // for mode/distinct; keys are the column's own doubles by design.
  std::array<std::unordered_map<double, uint64_t>, kShards> shards;

  static size_t ShardOf(double x) {
    return std::hash<double>{}(x) & (kShards - 1);
  }

  void Add(double x) { ++shards[ShardOf(x)][x]; }
  /// Compressed-domain fold: an RLE run of value x and length k lands as
  /// one O(1) bucket bump — bit-identical to k Add(x) calls.
  void AddRun(double x, uint64_t k) { shards[ShardOf(x)][x] += k; }
  /// Pre-sizes every shard for ~n total values.
  void Reserve(size_t n);
  void Merge(const ValueCounts& o);
  /// Folds only shard s of o into shard s of this — safe to call for
  /// distinct s from distinct threads concurrently.
  void MergeShard(const ValueCounts& o, size_t s);

  uint64_t Distinct() const;

  /// Most frequent value, ties toward the smaller value — the same
  /// tie-break the serial Mode() applies, so the merged answer is
  /// bit-identical to the sequential one. Errors on an empty state.
  Result<double> ModeValue() const;

  /// Builds the equi-width histogram the serial BuildHistogram would
  /// produce, by bucketing each distinct value once with its count.
  /// Bucket assignment is per-value, so the counts are exactly the
  /// sequential ones.
  Result<Histogram> ToHistogram(size_t buckets, double lo, double hi) const;
};

}  // namespace statdb

#endif  // STATDB_EXEC_PARTIAL_STATS_H_

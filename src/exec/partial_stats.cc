#include "exec/partial_stats.h"

#include <cmath>

namespace statdb {

void ComomentStats::Add(double x, double y) {
  ++n;
  double dn = double(n);
  double dx = x - mean_x;
  double dy = y - mean_y;
  mean_x += dx / dn;
  mean_y += dy / dn;
  // Use the post-update mean on one side (Welford form) for the second
  // moments and the co-moment.
  m2x += dx * (x - mean_x);
  m2y += dy * (y - mean_y);
  cxy += dx * (y - mean_y);
}

void ComomentStats::Merge(const ComomentStats& o) {
  if (o.n == 0) return;
  if (n == 0) {
    *this = o;
    return;
  }
  double na = double(n);
  double nb = double(o.n);
  double nn = na + nb;
  double dx = o.mean_x - mean_x;
  double dy = o.mean_y - mean_y;
  m2x += o.m2x + dx * dx * na * nb / nn;
  m2y += o.m2y + dy * dy * na * nb / nn;
  cxy += o.cxy + dx * dy * na * nb / nn;
  mean_x += dx * nb / nn;
  mean_y += dy * nb / nn;
  n += o.n;
}

Result<double> ComomentStats::Covariance() const {
  if (n < 2) {
    return InvalidArgumentError("covariance needs at least 2 points");
  }
  return cxy / double(n - 1);
}

Result<double> ComomentStats::PearsonR() const {
  STATDB_ASSIGN_OR_RETURN(double cov, Covariance());
  if (m2x == 0.0 || m2y == 0.0) {
    return InvalidArgumentError("correlation with a constant column");
  }
  double sx = std::sqrt(m2x / double(n - 1));
  double sy = std::sqrt(m2y / double(n - 1));
  return cov / (sx * sy);
}

Result<LinearFit> ComomentStats::Fit() const {
  if (n < 2) {
    return InvalidArgumentError("regression needs at least 2 points");
  }
  if (m2x == 0.0) {
    return InvalidArgumentError("regression on a constant x column");
  }
  LinearFit fit;
  fit.n = n;
  fit.slope = cxy / m2x;
  fit.intercept = mean_y - fit.slope * mean_x;
  // ss_res = syy - sxy^2/sxx, algebraically identical to summing squared
  // residuals; clamp the tiny negative values FP cancellation can leave.
  double ss_res = m2y - cxy * cxy / m2x;
  if (ss_res < 0.0) ss_res = 0.0;
  fit.r_squared = m2y == 0.0 ? 1.0 : 1.0 - ss_res / m2y;
  fit.residual_stddev = n > 2 ? std::sqrt(ss_res / double(n - 2)) : 0.0;
  return fit;
}

ComomentStats ComputeComoments(const std::vector<double>& x,
                               const std::vector<double>& y) {
  ComomentStats s;
  size_t n = std::min(x.size(), y.size());
  for (size_t i = 0; i < n; ++i) s.Add(x[i], y[i]);
  return s;
}

void ValueCounts::Reserve(size_t n) {
  for (auto& shard : shards) shard.reserve(n / kShards + 1);
}

void ValueCounts::Merge(const ValueCounts& o) {
  for (size_t s = 0; s < kShards; ++s) MergeShard(o, s);
}

void ValueCounts::MergeShard(const ValueCounts& o, size_t s) {
  for (const auto& [value, count] : o.shards[s]) shards[s][value] += count;
}

uint64_t ValueCounts::Distinct() const {
  uint64_t n = 0;
  for (const auto& shard : shards) n += shard.size();
  return n;
}

Result<double> ValueCounts::ModeValue() const {
  bool have = false;
  double best = 0;
  uint64_t best_count = 0;
  for (const auto& shard : shards) {
    for (const auto& [value, count] : shard) {
      if (!have || count > best_count ||
          (count == best_count && value < best)) {
        best = value;
        best_count = count;
        have = true;
      }
    }
  }
  if (!have) return InvalidArgumentError("statistic of an empty column");
  return best;
}

Result<Histogram> ValueCounts::ToHistogram(size_t buckets, double lo,
                                           double hi) const {
  STATDB_ASSIGN_OR_RETURN(Histogram h, BuildHistogram({}, buckets, lo, hi));
  for (const auto& shard : shards) {
    for (const auto& [value, count] : shard) {
      if (value < lo) {
        h.below += count;
      } else if (value > hi) {
        h.above += count;
      } else {
        int b = h.BucketOf(value);
        h.counts[static_cast<size_t>(b)] += count;
      }
    }
  }
  return h;
}

}  // namespace statdb

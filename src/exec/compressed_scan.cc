#include "exec/compressed_scan.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

namespace statdb {

namespace {

/// Half-open compressed-page range [begin, end) assigned to one task.
struct PageChunk {
  size_t begin = 0;
  size_t end = 0;
};

/// Splits [0, pages) into up to `num_chunks` contiguous page ranges.
/// Runs never straddle pages, so every chunk sees whole runs.
std::vector<PageChunk> SplitPages(size_t pages, size_t num_chunks) {
  std::vector<PageChunk> chunks;
  if (pages == 0 || num_chunks == 0) return chunks;
  size_t per_chunk = (pages + num_chunks - 1) / num_chunks;
  for (size_t first = 0; first < pages; first += per_chunk) {
    chunks.push_back({first, std::min(pages, first + per_chunk)});
  }
  return chunks;
}

size_t ChunkTarget(ThreadPool* pool) {
  // Same over-decomposition rule as ParallelScanColumn: 4 chunks per
  // worker so one cold chunk cannot straggle the pass.
  return pool == nullptr ? 1 : pool->size() * 4;
}

/// Runs `task(i)` for every chunk, on the pool when it helps.
Status ForEachChunk(size_t n, ThreadPool* pool,
                    const std::function<Status(size_t)>& task) {
  if (pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) STATDB_RETURN_IF_ERROR(task(i));
    return Status::OK();
  }
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back([&task, i]() { return task(i); });
  }
  return pool->RunAll(std::move(tasks));
}

void FoldRunCounts(const std::vector<RleRun>& runs, simd::RunValueKind kind,
                   ValueCounts* counts) {
  for (const RleRun& r : runs) {
    if (!r.present || r.length == 0) continue;
    counts->AddRun(simd::DecodeRunValue(r.value, kind), r.length);
  }
}

}  // namespace

Result<ColumnScanResult> ScanCompressedColumn(const CompressedColumnFile& file,
                                              simd::RunValueKind kind,
                                              bool want_counts,
                                              ThreadPool* pool) {
  std::vector<PageChunk> chunks =
      SplitPages(file.page_count(), ChunkTarget(pool));

  struct ChunkPartial {
    DescriptiveStats desc;
    ValueCounts counts;
  };
  std::vector<ChunkPartial> partials(chunks.size());
  STATDB_RETURN_IF_ERROR(ForEachChunk(
      chunks.size(), pool,
      [&chunks, &partials, &file, kind, want_counts](size_t i) -> Status {
        STATDB_ASSIGN_OR_RETURN(
            std::vector<RleRun> runs,
            file.ReadRuns(chunks[i].begin, chunks[i].end));
        partials[i].desc = simd::DescribeRuns(runs.data(), runs.size(), kind);
        if (want_counts) FoldRunCounts(runs, kind, &partials[i].counts);
        return Status::OK();
      }));

  ColumnScanResult result;
  result.chunks = chunks.size();
  for (ChunkPartial& p : partials) {
    result.desc.Merge(p.desc);
    if (want_counts) result.counts.Merge(p.counts);
  }
  return result;
}

Result<FilteredScanResult> ScanCompressedFiltered(
    const CompressedColumnFile& file, simd::RunValueKind kind,
    const simd::RunPredicate& pred, bool want_counts, ThreadPool* pool) {
  std::vector<PageChunk> chunks =
      SplitPages(file.page_count(), ChunkTarget(pool));
  const std::vector<uint64_t>& starts = file.page_starts();

  struct ChunkPartial {
    uint64_t rows = 0;
    DescriptiveStats desc;
    ValueCounts counts;
  };
  std::vector<ChunkPartial> partials(chunks.size());
  STATDB_RETURN_IF_ERROR(ForEachChunk(
      chunks.size(), pool,
      [&chunks, &partials, &starts, &file, kind, &pred,
       want_counts](size_t i) -> Status {
        STATDB_ASSIGN_OR_RETURN(
            std::vector<RleRun> runs,
            file.ReadRuns(chunks[i].begin, chunks[i].end));
        std::vector<simd::MatchedRun> matched(runs.size());
        size_t m = simd::FilterRuns(
            runs.data(), runs.size(), kind, starts[chunks[i].begin],
            /*row_begin=*/0,
            /*row_end=*/std::numeric_limits<uint64_t>::max(), pred,
            matched.data());
        partials[i].rows = simd::MatchedRowCount(matched.data(), m);
        partials[i].desc = simd::DescribeMatchedRuns(matched.data(), m);
        if (want_counts) {
          for (size_t r = 0; r < m; ++r) {
            partials[i].counts.AddRun(matched[r].value, matched[r].length);
          }
        }
        return Status::OK();
      }));

  FilteredScanResult result;
  for (ChunkPartial& p : partials) {
    result.rows += p.rows;
    result.desc.Merge(p.desc);
    if (want_counts) result.counts.Merge(p.counts);
  }
  return result;
}

}  // namespace statdb

#include "exec/chunked_scanner.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "simd/kernels.h"

namespace statdb {

std::vector<ScanChunk> SplitPageAligned(uint64_t rows, size_t cells_per_page,
                                        size_t num_chunks) {
  std::vector<ScanChunk> chunks;
  if (rows == 0 || cells_per_page == 0 || num_chunks == 0) return chunks;
  uint64_t cpp = cells_per_page;
  uint64_t pages = (rows + cpp - 1) / cpp;
  uint64_t pages_per_chunk = (pages + num_chunks - 1) / num_chunks;
  for (uint64_t first = 0; first < pages; first += pages_per_chunk) {
    ScanChunk c;
    c.begin = first * cpp;
    c.end = std::min<uint64_t>(rows, (first + pages_per_chunk) * cpp);
    chunks.push_back(c);
  }
  return chunks;
}

namespace {

/// Per-chunk accumulation shared by the worker tasks and the inline
/// fallback path, so both produce identical partials.
struct ChunkPartial {
  DescriptiveStats desc;
  ValueCounts counts;
  std::vector<double> values;
};

Status ScanOneChunk(const ScanChunk& chunk, const ColumnRangeReader& reader,
                    const ColumnScanSpec& spec, ChunkPartial* out,
                    ChunkScanStat* stat) {
  std::chrono::steady_clock::time_point start;
  if (stat != nullptr) start = std::chrono::steady_clock::now();
  STATDB_ASSIGN_OR_RETURN(std::vector<double> data,
                          reader(chunk.begin, chunk.end));
  // Span-batched kernel (simd/kernels.h): same count/min/max as the
  // serial fold, moments within the documented 4-lane tolerance.
  out->desc = simd::DescribeSpan(data.data(), data.size());
  if (spec.want_counts) {
    out->counts.Reserve(data.size());
    for (double x : data) out->counts.Add(x);
  }
  if (stat != nullptr) {
    stat->rows = data.size();
    stat->wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  }
  if (spec.keep_values) {
    out->values = std::move(data);
  }
  return Status::OK();
}

}  // namespace

Result<ColumnScanResult> ParallelScanColumn(uint64_t rows,
                                            size_t cells_per_page,
                                            const ColumnRangeReader& reader,
                                            const ColumnScanSpec& spec,
                                            ThreadPool* pool) {
  // Over-decompose relative to the worker count so a slow chunk (cold
  // pages, eviction pressure) cannot straggle the whole pass.
  size_t num_chunks = pool == nullptr ? 1 : pool->size() * 4;
  std::vector<ScanChunk> chunks =
      SplitPageAligned(rows, cells_per_page, num_chunks);

  ColumnScanResult result;
  result.chunks = chunks.size();
  std::vector<ChunkPartial> partials(chunks.size());
  if (spec.time_chunks) result.chunk_stats.resize(chunks.size());
  auto stat_of = [&result](size_t i) -> ChunkScanStat* {
    return result.chunk_stats.empty() ? nullptr : &result.chunk_stats[i];
  };
  if (pool == nullptr || chunks.size() <= 1) {
    for (size_t i = 0; i < chunks.size(); ++i) {
      STATDB_RETURN_IF_ERROR(
          ScanOneChunk(chunks[i], reader, spec, &partials[i], stat_of(i)));
    }
  } else {
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(chunks.size());
    for (size_t i = 0; i < chunks.size(); ++i) {
      tasks.push_back([&chunks, &reader, &spec, &partials, stat_of, i]() {
        return ScanOneChunk(chunks[i], reader, spec, &partials[i],
                            stat_of(i));
      });
    }
    STATDB_RETURN_IF_ERROR(pool->RunAll(std::move(tasks)));
  }

  // Barrier: merge in chunk order, so the merged state (and the
  // concatenated values) are deterministic regardless of which worker
  // finished first.
  for (ChunkPartial& p : partials) {
    result.desc.Merge(p.desc);
    if (spec.keep_values) {
      result.values.insert(result.values.end(), p.values.begin(),
                           p.values.end());
    }
  }
  if (spec.want_counts) {
    if (pool != nullptr && partials.size() > 1) {
      // On a mostly-distinct column the count merge costs as much as the
      // scan itself; a single-threaded fold here would cap the whole
      // pass at ~2x (Amdahl). Values are hash-partitioned into the same
      // shard of every partial, so one task per shard folds its slice
      // of all partials with no cross-shard writes.
      std::vector<std::function<Status()>> merges;
      merges.reserve(ValueCounts::kShards);
      for (size_t s = 0; s < ValueCounts::kShards; ++s) {
        merges.push_back([&result, &partials, s]() {
          size_t total = 0;
          for (const ChunkPartial& p : partials) {
            total += p.counts.shards[s].size();
          }
          result.counts.shards[s].reserve(total);
          for (const ChunkPartial& p : partials) {
            result.counts.MergeShard(p.counts, s);
          }
          return Status::OK();
        });
      }
      STATDB_RETURN_IF_ERROR(pool->RunAll(std::move(merges)));
    } else {
      for (const ChunkPartial& p : partials) result.counts.Merge(p.counts);
    }
  }
  return result;
}

Result<ComomentStats> ParallelScanPairs(uint64_t rows, size_t cells_per_page,
                                        const PairRangeReader& reader,
                                        ThreadPool* pool) {
  size_t num_chunks = pool == nullptr ? 1 : pool->size() * 4;
  std::vector<ScanChunk> chunks =
      SplitPageAligned(rows, cells_per_page, num_chunks);

  std::vector<ComomentStats> partials(chunks.size());
  auto scan_chunk = [&chunks, &reader, &partials](size_t i) -> Status {
    std::vector<double> xs, ys;
    STATDB_RETURN_IF_ERROR(reader(chunks[i].begin, chunks[i].end, &xs, &ys));
    // Span-batched co-moment kernel; simd::Comoments mirrors
    // ComomentStats field-for-field (simd sits below exec in the DAG).
    simd::Comoments cm = simd::ComomentSpan(xs.data(), ys.data(), xs.size());
    partials[i].n = cm.n;
    partials[i].mean_x = cm.mean_x;
    partials[i].mean_y = cm.mean_y;
    partials[i].m2x = cm.m2x;
    partials[i].m2y = cm.m2y;
    partials[i].cxy = cm.cxy;
    return Status::OK();
  };
  if (pool == nullptr || chunks.size() <= 1) {
    for (size_t i = 0; i < chunks.size(); ++i) {
      STATDB_RETURN_IF_ERROR(scan_chunk(i));
    }
  } else {
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(chunks.size());
    for (size_t i = 0; i < chunks.size(); ++i) {
      tasks.push_back([scan_chunk, i]() { return scan_chunk(i); });
    }
    STATDB_RETURN_IF_ERROR(pool->RunAll(std::move(tasks)));
  }

  ComomentStats merged;
  for (const ComomentStats& p : partials) merged.Merge(p);
  return merged;
}

}  // namespace statdb

#include "exec/thread_pool.h"

#include <cassert>
#include <chrono>
#include <string>
#include <utility>

namespace statdb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Quiesce(); }

void ThreadPool::Quiesce() {
  Shutdown();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<Status()> task;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (not a predicate lambda): the thread safety
      // analysis verifies guarded accesses in this scope but cannot see
      // into a closure.
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) {
        // Shutdown with a drained queue. Submit rejects work once
        // shutdown_ is set, so nothing can land behind this check — a
        // task here would be one no worker will ever run.
        assert(shutdown_ && queue_.empty());
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    auto start = std::chrono::steady_clock::now();
    task();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    LatencyHistogram* sink;
    {
      MutexLock lock(mu_);
      ++stats_.executed;
      stats_.total_task_ms += ms;
      sink = task_latency_;
    }
    if (sink != nullptr) sink->Record(ms);
  }
}

std::future<Status> ThreadPool::Submit(std::function<Status()> task) {
  // Exception -> Status capture: a worker must never unwind into the
  // pool machinery (std::packaged_task would stash the exception in the
  // future, but callers here consume plain Status values).
  std::packaged_task<Status()> wrapped(
      [task = std::move(task)]() -> Status {
        try {
          return task();
        } catch (const std::exception& e) {
          return InternalError(std::string("worker task threw: ") + e.what());
        } catch (...) {
          return InternalError("worker task threw a non-standard exception");
        }
      });
  std::future<Status> fut = wrapped.get_future();
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      // The workers may already have observed shutdown_ and exited; a
      // task enqueued now would never run and its future would hang (or
      // throw broken_promise once the queue is destroyed). Refuse with a
      // future that is ready immediately instead.
      ++stats_.rejected;
      std::promise<Status> refused;
      refused.set_value(FailedPreconditionError(
          "ThreadPool::Submit after Shutdown: task rejected"));
      return refused.get_future();
    }
    queue_.push_back(std::move(wrapped));
    ++stats_.submitted;
    if (queue_.size() > stats_.max_queue_depth) {
      stats_.max_queue_depth = queue_.size();
    }
  }
  cv_.NotifyOne();
  return fut;
}

Status ThreadPool::RunAll(std::vector<std::function<Status()>> tasks) {
  std::vector<std::future<Status>> futures;
  futures.reserve(tasks.size());
  for (std::function<Status()>& t : tasks) {
    futures.push_back(Submit(std::move(t)));
  }
  Status first = Status::OK();
  for (std::future<Status>& f : futures) {
    Status s = f.get();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

ThreadPoolStats ThreadPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void ThreadPool::set_task_latency_sink(LatencyHistogram* sink) {
  MutexLock lock(mu_);
  task_latency_ = sink;
}

}  // namespace statdb

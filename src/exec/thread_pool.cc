#include "exec/thread_pool.h"

#include <string>
#include <utility>

namespace statdb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<Status()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<Status> ThreadPool::Submit(std::function<Status()> task) {
  // Exception -> Status capture: a worker must never unwind into the
  // pool machinery (std::packaged_task would stash the exception in the
  // future, but callers here consume plain Status values).
  std::packaged_task<Status()> wrapped(
      [task = std::move(task)]() -> Status {
        try {
          return task();
        } catch (const std::exception& e) {
          return InternalError(std::string("worker task threw: ") + e.what());
        } catch (...) {
          return InternalError("worker task threw a non-standard exception");
        }
      });
  std::future<Status> fut = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

Status ThreadPool::RunAll(std::vector<std::function<Status()>> tasks) {
  std::vector<std::future<Status>> futures;
  futures.reserve(tasks.size());
  for (std::function<Status()>& t : tasks) {
    futures.push_back(Submit(std::move(t)));
  }
  Status first = Status::OK();
  for (std::future<Status>& f : futures) {
    Status s = f.get();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

}  // namespace statdb

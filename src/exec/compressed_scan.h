#ifndef STATDB_EXEC_COMPRESSED_SCAN_H_
#define STATDB_EXEC_COMPRESSED_SCAN_H_

#include "common/result.h"
#include "common/status.h"
#include "exec/chunked_scanner.h"
#include "exec/thread_pool.h"
#include "simd/kernels.h"
#include "simd/pushdown.h"
#include "storage/compressed_column_file.h"

namespace statdb {

/// Compressed-domain column scans (DESIGN.md §14): aggregation directly
/// over the RLE sidecar's run records, never materializing cells. Work
/// and I/O scale with the run count, not the row count — on a
/// high-compression column that is orders of magnitude less of both.
///
/// Parallel shape mirrors ParallelScanColumn: compressed pages are split
/// into page-aligned chunks (runs never straddle pages), each chunk folds
/// its runs into a private partial on a worker, and partials merge in
/// chunk order at the barrier, so the answer is deterministic for a given
/// chunking. Versus the serial per-cell oracle, count/min/max are exact
/// and sum/mean/m2 carry the documented Chan-et-al. tolerance class.

/// Full-column compressed-domain scan. `kind` says how the stored raws
/// decode (ints cast, doubles bit-cast — TransposedTable's encoding).
/// With want_counts the per-value frequency map is built one O(1) bucket
/// bump per run (ValueCounts::AddRun), bit-identical to cell-at-a-time
/// Add. `keep_values`/`time_chunks` have no compressed-domain analogue,
/// so the result's `values`/`chunk_stats` stay empty.
Result<ColumnScanResult> ScanCompressedColumn(const CompressedColumnFile& file,
                                              simd::RunValueKind kind,
                                              bool want_counts,
                                              ThreadPool* pool);

/// Result of a filtered compressed-domain scan: how many rows matched,
/// plus the aggregate partials over exactly those rows.
struct FilteredScanResult {
  uint64_t rows = 0;
  DescriptiveStats desc;
  ValueCounts counts;  // populated when want_counts
};

/// Predicate/aggregate pushdown (§4.3 scan-offload generalized): the
/// predicate evaluates once per run, matching runs contribute their whole
/// length in O(1), and no row is ever materialized. Equivalent to
/// filter-then-materialize over the decoded column (NaN cells match only
/// the kAll predicate, exactly like a double comparison would decide).
Result<FilteredScanResult> ScanCompressedFiltered(
    const CompressedColumnFile& file, simd::RunValueKind kind,
    const simd::RunPredicate& pred, bool want_counts, ThreadPool* pool);

}  // namespace statdb

#endif  // STATDB_EXEC_COMPRESSED_SCAN_H_

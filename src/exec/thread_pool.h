#ifndef STATDB_EXEC_THREAD_POOL_H_
#define STATDB_EXEC_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace statdb {

/// Work-queue behavior counters for one pool (the thread-pool section of
/// Dbms::DumpMetrics). Snapshot by value via ThreadPool::stats().
struct ThreadPoolStats {
  uint64_t submitted = 0;        // tasks accepted into the queue
  uint64_t executed = 0;         // tasks that ran to completion
  uint64_t rejected = 0;         // submissions refused after Shutdown
  uint64_t max_queue_depth = 0;  // high-water mark of queued tasks
  double total_task_ms = 0;      // wall time spent inside tasks
};

/// A fixed-size worker pool with a FIFO work queue.
///
/// Tasks are `Status()` callables; a task that throws is captured and
/// surfaced as an INTERNAL Status instead of terminating the process, so
/// the Status-based error discipline of the rest of the system holds
/// across thread boundaries. Destruction is graceful: every task already
/// queued still runs before the workers join.
///
/// The pool itself is thread-safe (any thread may Submit), but it is not
/// re-entrant: a task must not block on the future of another task
/// submitted to the same pool, or the pool can deadlock with all workers
/// waiting.
///
/// Shutdown discipline: once Shutdown() runs (the destructor calls it),
/// Submit refuses new work with an immediately-ready FAILED_PRECONDITION
/// future instead of enqueueing a task no worker will ever run — a task
/// slipped in after the workers observed shutdown would leave its
/// caller's future to hang or throw broken_promise.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Shutdown() + join every worker (the queue drains first).
  ~ThreadPool();

  size_t size() const { return workers_.size(); }

  /// Stops accepting work. Tasks already queued still run; workers exit
  /// once the queue is drained. Idempotent; does not join (the destructor
  /// does). Exposed so owners can fence the pool ahead of destruction and
  /// so tests can pin down the Submit-after-shutdown contract.
  void Shutdown();

  /// Shutdown() plus joining every worker: on return the queue is fully
  /// drained and the final `executed`/`total_task_ms` bumps have landed,
  /// so stats() is exact. Idempotent, but only the owning thread may
  /// call it (it joins the worker threads).
  void Quiesce();

  /// Enqueues one task; the future carries its Status (or the Status a
  /// thrown exception was converted to). After Shutdown the task is NOT
  /// enqueued and the returned future is already ready with
  /// FAILED_PRECONDITION.
  std::future<Status> Submit(std::function<Status()> task);

  /// Submits every task, waits for all of them, and returns the first
  /// non-OK Status in task order (OK if all succeeded). Unlike a bare
  /// loop over Submit, this never abandons a future: every task finishes
  /// before RunAll returns, even on error.
  Status RunAll(std::vector<std::function<Status()>> tasks);

  /// Counter snapshot (exact once the pool is quiescent or destroyed).
  ThreadPoolStats stats() const;

  /// Optional per-task latency sink: every completed task records its
  /// execution wall time here. The histogram's atomics make this safe
  /// from all workers; the pointer must outlive the pool. nullptr
  /// detaches.
  void set_task_latency_sink(LatencyHistogram* sink);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<Status()>> queue_ STATDB_GUARDED_BY(mu_);
  bool shutdown_ STATDB_GUARDED_BY(mu_) = false;
  ThreadPoolStats stats_ STATDB_GUARDED_BY(mu_);
  LatencyHistogram* task_latency_ STATDB_GUARDED_BY(mu_) = nullptr;
};

}  // namespace statdb

#endif  // STATDB_EXEC_THREAD_POOL_H_

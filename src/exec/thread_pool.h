#ifndef STATDB_EXEC_THREAD_POOL_H_
#define STATDB_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace statdb {

/// A fixed-size worker pool with a FIFO work queue.
///
/// Tasks are `Status()` callables; a task that throws is captured and
/// surfaced as an INTERNAL Status instead of terminating the process, so
/// the Status-based error discipline of the rest of the system holds
/// across thread boundaries. Destruction is graceful: every task already
/// queued still runs before the workers join.
///
/// The pool itself is thread-safe (any thread may Submit), but it is not
/// re-entrant: a task must not block on the future of another task
/// submitted to the same pool, or the pool can deadlock with all workers
/// waiting.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  size_t size() const { return workers_.size(); }

  /// Enqueues one task; the future carries its Status (or the Status a
  /// thrown exception was converted to).
  std::future<Status> Submit(std::function<Status()> task);

  /// Submits every task, waits for all of them, and returns the first
  /// non-OK Status in task order (OK if all succeeded). Unlike a bare
  /// loop over Submit, this never abandons a future: every task finishes
  /// before RunAll returns, even on error.
  Status RunAll(std::vector<std::function<Status()>> tasks);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<Status()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace statdb

#endif  // STATDB_EXEC_THREAD_POOL_H_

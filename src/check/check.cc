#include "check/check.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "check/check_access.h"
#include "common/checksum.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "stats/correlation.h"
#include "stats/histogram.h"
#include "stats/crosstab.h"
#include "stats/regression.h"
#include "stats/tests.h"
#include "storage/device.h"
#include "storage/slotted_page.h"

namespace statdb {

std::string_view CheckSeverityName(CheckSeverity s) {
  switch (s) {
    case CheckSeverity::kInfo: return "INFO";
    case CheckSeverity::kWarning: return "WARNING";
    case CheckSeverity::kError: return "ERROR";
  }
  return "UNKNOWN";
}

std::string CheckIssue::ToString() const {
  std::ostringstream os;
  os << CheckSeverityName(severity) << " [" << subsystem << "/" << invariant
     << "] " << message;
  return os.str();
}

void CheckReport::Add(CheckSeverity severity, std::string subsystem,
                      std::string invariant, std::string message) {
  if (severity == CheckSeverity::kError) ++errors_;
  if (severity == CheckSeverity::kWarning) ++warnings_;
  issues_.push_back(CheckIssue{severity, std::move(subsystem),
                               std::move(invariant), std::move(message)});
}

std::vector<const CheckIssue*> CheckReport::FindInvariant(
    const std::string& invariant) const {
  std::vector<const CheckIssue*> out;
  for (const CheckIssue& issue : issues_) {
    if (issue.invariant == invariant) out.push_back(&issue);
  }
  return out;
}

bool CheckReport::HasError(const std::string& invariant) const {
  for (const CheckIssue& issue : issues_) {
    if (issue.severity == CheckSeverity::kError &&
        issue.invariant == invariant) {
      return true;
    }
  }
  return false;
}

std::string CheckReport::ToString() const {
  std::ostringstream os;
  for (const CheckIssue& issue : issues_) {
    os << issue.ToString() << "\n";
  }
  os << (ok() ? "PASS" : "FAIL") << " (" << errors_ << " errors, "
     << warnings_ << " warnings, " << issues_.size() << " findings)";
  return os.str();
}

Status CheckReport::ToStatus() const {
  if (ok()) return Status::OK();
  std::ostringstream os;
  os << errors_ << " invariant violation(s):";
  size_t shown = 0;
  for (const CheckIssue& issue : issues_) {
    if (issue.severity != CheckSeverity::kError) continue;
    os << " [" << issue.subsystem << "/" << issue.invariant << "] "
       << issue.message << ";";
    if (++shown == 3) break;
  }
  if (shown < errors_) os << " ...";
  return DataLossError(os.str());
}

// --- buffer pool ------------------------------------------------------------

Status CheckBufferPool(const BufferPool& pool, CheckReport* report,
                       const BufferPoolCheckOptions& options) {
  const char* kSub = "buffer_pool";
  // Hold the pool's latch for the whole structural walk: the snapshot is
  // consistent, and the audit no longer relies on the caller promising
  // quiescence (scan workers may pin/unpin while this runs).
  MutexLock lock(CheckAccess::PoolMutex(pool));
  const auto& frames = CheckAccess::Frames(pool);
  const auto& free_frames = CheckAccess::FreeFrames(pool);
  const auto& page_table = CheckAccess::PageTable(pool);
  const auto& lru = CheckAccess::Lru(pool);

  // No-steal mode may grow overflow frames past nominal capacity (they
  // shrink back after FlushAll), so only a *shrunken* frame array is
  // structural corruption.
  if (frames.size() < pool.capacity()) {
    report->Add(CheckSeverity::kError, kSub, "frame-count",
                "frames_.size() < capacity: " +
                    std::to_string(frames.size()) + " vs " +
                    std::to_string(pool.capacity()));
    return Status::OK();  // everything below indexes frames_
  }

  // page_table_: in-bounds, id round-trips, one frame per entry.
  std::vector<char> resident(frames.size(), 0);
  for (const auto& [id, idx] : page_table) {
    if (idx >= frames.size()) {
      report->Add(CheckSeverity::kError, kSub, "table-bounds",
                  "page_table_ maps page " + std::to_string(id) +
                      " to out-of-range frame " + std::to_string(idx));
      continue;
    }
    if (resident[idx]) {
      report->Add(CheckSeverity::kError, kSub, "duplicate-frame",
                  "frame " + std::to_string(idx) +
                      " referenced by two page_table_ entries");
    }
    resident[idx] = 1;
    if (frames[idx].id != id) {
      report->Add(CheckSeverity::kError, kSub, "id-mismatch",
                  "page_table_[" + std::to_string(id) + "] = frame " +
                      std::to_string(idx) + " whose id is " +
                      std::to_string(frames[idx].id));
    }
  }

  // free list: in-bounds, unique, disjoint from residents.
  std::vector<char> free_mark(frames.size(), 0);
  for (size_t idx : free_frames) {
    if (idx >= frames.size()) {
      report->Add(CheckSeverity::kError, kSub, "free-bounds",
                  "free_frames_ holds out-of-range index " +
                      std::to_string(idx));
      continue;
    }
    if (free_mark[idx]) {
      report->Add(CheckSeverity::kError, kSub, "free-duplicate",
                  "frame " + std::to_string(idx) + " on free list twice");
    }
    free_mark[idx] = 1;
    if (resident[idx]) {
      report->Add(CheckSeverity::kError, kSub, "free-resident",
                  "frame " + std::to_string(idx) +
                      " is simultaneously free and page-mapped");
    }
  }

  // Every frame is accounted for exactly once.
  for (size_t i = 0; i < frames.size(); ++i) {
    if (!resident[i] && !free_mark[i]) {
      report->Add(CheckSeverity::kError, kSub, "frame-leak",
                  "frame " + std::to_string(i) +
                      " is neither free nor page-mapped");
    }
  }

  // lru_: members are resident, unpinned, marked in_lru with a matching
  // back-pointer, and appear exactly once.
  std::vector<size_t> lru_hits(frames.size(), 0);
  for (auto it = lru.begin(); it != lru.end(); ++it) {
    size_t idx = *it;
    if (idx >= frames.size()) {
      report->Add(CheckSeverity::kError, kSub, "lru-bounds",
                  "lru_ holds out-of-range index " + std::to_string(idx));
      continue;
    }
    ++lru_hits[idx];
    const auto& f = frames[idx];
    if (!resident[idx]) {
      report->Add(CheckSeverity::kError, kSub, "lru-nonresident",
                  "lru_ lists frame " + std::to_string(idx) +
                      " which is not in page_table_");
    }
    if (f.pin_count != 0) {
      report->Add(CheckSeverity::kError, kSub, "lru-pinned",
                  "frame " + std::to_string(idx) + " is on lru_ with pin "
                      "count " + std::to_string(f.pin_count));
    }
    if (!f.in_lru) {
      report->Add(CheckSeverity::kError, kSub, "lru-flag",
                  "frame " + std::to_string(idx) +
                      " is on lru_ but in_lru is false");
    } else if (f.lru_pos != it) {
      report->Add(CheckSeverity::kError, kSub, "lru-backpointer",
                  "frame " + std::to_string(idx) +
                      " lru_pos does not point at its lru_ entry");
    }
  }
  for (size_t i = 0; i < frames.size(); ++i) {
    if (lru_hits[i] > 1) {
      report->Add(CheckSeverity::kError, kSub, "lru-duplicate",
                  "frame " + std::to_string(i) + " appears " +
                      std::to_string(lru_hits[i]) + " times on lru_");
    }
    if (frames[i].in_lru && lru_hits[i] == 0) {
      report->Add(CheckSeverity::kError, kSub, "lru-flag",
                  "frame " + std::to_string(i) +
                      " has in_lru set but is absent from lru_");
    }
    if (resident[i] && frames[i].pin_count == 0 && lru_hits[i] == 0) {
      report->Add(CheckSeverity::kError, kSub, "lru-membership",
                  "unpinned resident frame " + std::to_string(i) +
                      " (page " + std::to_string(frames[i].id) +
                      ") is missing from lru_ and can never be evicted");
    }
    if (frames[i].pin_count < 0) {
      report->Add(CheckSeverity::kError, kSub, "negative-pin",
                  "frame " + std::to_string(i) + " has pin count " +
                      std::to_string(frames[i].pin_count));
    }
    if (options.expect_quiescent && frames[i].pin_count > 0) {
      report->Add(CheckSeverity::kError, kSub, "pin-leak",
                  "frame " + std::to_string(i) + " (page " +
                      std::to_string(frames[i].id) + ") still holds " +
                      std::to_string(frames[i].pin_count) +
                      " pin(s) at quiescence");
    }
  }
  return Status::OK();
}

// --- device checksums -------------------------------------------------------

Status CheckDeviceChecksums(const SimulatedDevice& device, uint64_t max_lsn,
                            CheckReport* report) {
  const char* kSub = "device";
  for (PageId pid = 0; pid < device.page_count(); ++pid) {
    const Page* page = CheckAccess::RawPage(device, pid);
    if (page == nullptr) break;  // cannot happen inside page_count()
    if (!page->header.checksummed()) continue;
    const uint32_t actual = Crc32c(page->data.data(), kPageSize);
    if (actual != page->header.checksum) {
      report->Add(CheckSeverity::kError, kSub, "page-checksum",
                  "device " + device.name() + " page " + std::to_string(pid) +
                      " stored checksum " +
                      std::to_string(page->header.checksum) +
                      " != computed " + std::to_string(actual));
    }
    if (page->header.lsn > max_lsn) {
      report->Add(CheckSeverity::kError, kSub, "page-lsn",
                  "device " + device.name() + " page " + std::to_string(pid) +
                      " claims lsn " + std::to_string(page->header.lsn) +
                      " beyond last committed lsn " + std::to_string(max_lsn));
    }
  }
  return Status::OK();
}

// --- B+-tree ----------------------------------------------------------------

namespace {

struct TreeWalkState {
  const BPlusTree* tree;
  const SimulatedDevice* device;
  CheckReport* report;
  std::unordered_set<PageId> visited;
  // Leaves in key order, with each leaf's stored next pointer.
  std::vector<std::pair<PageId, PageId>> leaf_chain;
  uint64_t entries = 0;
  int leaf_depth = -1;  // depth of the first leaf reached
  bool aborted = false;
};

// Bounds are half-open: every key in the subtree must satisfy
// lo <= key < hi (empty string = unbounded), matching the upper_bound
// descent in BPlusTree::FindLeaf.
void WalkTree(TreeWalkState* st, PageId pid, int depth, const std::string* lo,
              const std::string* hi) {
  const char* kSub = "btree";
  CheckReport* report = st->report;
  if (pid == kInvalidPageId || pid >= st->device->page_count()) {
    report->Add(CheckSeverity::kError, kSub, "dangling-child",
                "child pointer " + std::to_string(pid) +
                    " is outside the device's " +
                    std::to_string(st->device->page_count()) + " pages");
    return;
  }
  if (!st->visited.insert(pid).second) {
    report->Add(CheckSeverity::kError, kSub, "node-shared",
                "page " + std::to_string(pid) +
                    " reached twice (cycle or shared child)");
    st->aborted = true;
    return;
  }
  Result<CheckAccess::TreeNode> loaded = CheckAccess::LoadNode(*st->tree, pid);
  if (!loaded.ok()) {
    report->Add(CheckSeverity::kError, kSub, "node-parse",
                "page " + std::to_string(pid) +
                    " does not parse as a node: " +
                    loaded.status().ToString());
    return;
  }
  const CheckAccess::TreeNode& node = loaded.value();
  size_t bytes = CheckAccess::NodeSerializedSize(node);
  constexpr size_t kCapacity = kPageSize - sizeof(uint32_t);

  if (node.is_leaf) {
    if (st->leaf_depth < 0) {
      st->leaf_depth = depth;
    } else if (depth != st->leaf_depth) {
      report->Add(CheckSeverity::kError, kSub, "leaf-depth",
                  "leaf " + std::to_string(pid) + " at depth " +
                      std::to_string(depth) + ", expected " +
                      std::to_string(st->leaf_depth));
    }
    const auto& entries = node.leaf.entries;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i > 0 && !(entries[i - 1].first < entries[i].first)) {
        report->Add(CheckSeverity::kError, kSub, "key-order",
                    "leaf " + std::to_string(pid) + " entries " +
                        std::to_string(i - 1) + "," + std::to_string(i) +
                        " out of order");
      }
      if (lo != nullptr && entries[i].first < *lo) {
        report->Add(CheckSeverity::kError, kSub, "separator-bound",
                    "leaf " + std::to_string(pid) +
                        " holds a key below its subtree lower bound");
      }
      if (hi != nullptr && !(entries[i].first < *hi)) {
        report->Add(CheckSeverity::kError, kSub, "separator-bound",
                    "leaf " + std::to_string(pid) +
                        " holds a key at/above its subtree upper bound");
      }
    }
    st->entries += entries.size();
    st->leaf_chain.emplace_back(pid, node.leaf.next);
    // Deletion never rebalances (by design), so thin leaves are legal but
    // worth surfacing before a reorganize.
    if (depth > 0 && entries.empty()) {
      report->Add(CheckSeverity::kWarning, kSub, "empty-leaf",
                  "non-root leaf " + std::to_string(pid) + " is empty");
    } else if (depth > 0 && bytes * 4 < kCapacity) {
      report->Add(CheckSeverity::kWarning, kSub, "underfull-leaf",
                  "leaf " + std::to_string(pid) + " is below 25% fill (" +
                      std::to_string(bytes) + " bytes)");
    }
    return;
  }

  const auto& keys = node.internal.keys;
  const auto& children = node.internal.children;
  if (children.size() != keys.size() + 1) {
    report->Add(CheckSeverity::kError, kSub, "fanout",
                "internal " + std::to_string(pid) + " has " +
                    std::to_string(keys.size()) + " keys but " +
                    std::to_string(children.size()) + " children");
    return;
  }
  if (keys.empty()) {
    report->Add(CheckSeverity::kError, kSub, "empty-internal",
                "internal " + std::to_string(pid) + " has no separators");
  }
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    if (!(keys[i] < keys[i + 1])) {
      report->Add(CheckSeverity::kError, kSub, "key-order",
                  "internal " + std::to_string(pid) + " separators " +
                      std::to_string(i) + "," + std::to_string(i + 1) +
                      " out of order");
    }
  }
  for (const std::string& k : keys) {
    if (lo != nullptr && k < *lo) {
      report->Add(CheckSeverity::kError, kSub, "separator-bound",
                  "internal " + std::to_string(pid) +
                      " separator below its subtree lower bound");
    }
    if (hi != nullptr && !(k < *hi)) {
      report->Add(CheckSeverity::kError, kSub, "separator-bound",
                  "internal " + std::to_string(pid) +
                      " separator at/above its subtree upper bound");
    }
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (st->aborted) return;
    const std::string* child_lo = i == 0 ? lo : &keys[i - 1];
    const std::string* child_hi = i == keys.size() ? hi : &keys[i];
    WalkTree(st, children[i], depth + 1, child_lo, child_hi);
  }
}

}  // namespace

Status CheckBPlusTree(const BPlusTree& tree, CheckReport* report) {
  const char* kSub = "btree";
  TreeWalkState st;
  st.tree = &tree;
  // The walk validates child pointers against the device's allocated page
  // range before loading them, so a scribbled pointer is reported rather
  // than faulted on.
  st.device = CheckAccess::TreePool(tree)->device();
  st.report = report;
  WalkTree(&st, tree.root_id(), 0, nullptr, nullptr);

  // Sibling chain must equal the in-order leaf sequence.
  for (size_t i = 0; i < st.leaf_chain.size(); ++i) {
    PageId next = st.leaf_chain[i].second;
    PageId expect =
        i + 1 < st.leaf_chain.size() ? st.leaf_chain[i + 1].first
                                     : kInvalidPageId;
    if (next != expect) {
      report->Add(CheckSeverity::kError, kSub, "leaf-chain",
                  "leaf " + std::to_string(st.leaf_chain[i].first) +
                      " next pointer is " + std::to_string(next) +
                      ", expected " + std::to_string(expect));
    }
  }

  if (!st.aborted && st.entries != tree.size()) {
    report->Add(CheckSeverity::kError, kSub, "size-drift",
                "tree walk found " + std::to_string(st.entries) +
                    " entries but size() reports " +
                    std::to_string(tree.size()));
  }
  return Status::OK();
}

// --- slotted page -----------------------------------------------------------

Status CheckSlottedPage(const Page& page, CheckReport* report) {
  const char* kSub = "slotted_page";
  // Mirrors the layout documented in slotted_page.h: u16 slot_count,
  // u16 free_end, then 4-byte {offset, length} slots; 0xFFFF = deleted.
  constexpr size_t kHeaderSize = 4;
  constexpr size_t kSlotSize = 4;
  auto get_u16 = [&page](size_t off) {
    uint16_t v;
    std::memcpy(&v, page.bytes() + off, sizeof(v));
    return v;
  };
  uint16_t slot_count = get_u16(0);
  uint16_t free_end = get_u16(2);
  size_t slots_end = kHeaderSize + size_t(slot_count) * kSlotSize;

  if (free_end > kPageSize) {
    report->Add(CheckSeverity::kError, kSub, "free-end-bounds",
                "free_end " + std::to_string(free_end) +
                    " exceeds the page size");
    return Status::OK();
  }
  if (slots_end > kPageSize) {
    report->Add(CheckSeverity::kError, kSub, "directory-bounds",
                "slot directory (" + std::to_string(slot_count) +
                    " slots) runs past the page end");
    return Status::OK();
  }
  if (slots_end > free_end) {
    report->Add(CheckSeverity::kError, kSub, "directory-overlap",
                "slot directory ends at " + std::to_string(slots_end) +
                    " past free_end " + std::to_string(free_end));
  }

  std::vector<std::pair<uint16_t, uint16_t>> live;  // (offset, length)
  size_t min_live_offset = kPageSize;
  for (uint16_t s = 0; s < slot_count; ++s) {
    uint16_t offset = get_u16(kHeaderSize + size_t(s) * kSlotSize);
    if (offset == SlottedPage::kDeletedOffset) continue;
    uint16_t length = get_u16(kHeaderSize + size_t(s) * kSlotSize + 2);
    if (size_t(offset) + length > kPageSize || offset < slots_end) {
      report->Add(CheckSeverity::kError, kSub, "cell-bounds",
                  "slot " + std::to_string(s) + " cell [" +
                      std::to_string(offset) + ", " +
                      std::to_string(offset + length) +
                      ") is out of bounds");
      continue;
    }
    if (offset < free_end) {
      report->Add(CheckSeverity::kError, kSub, "free-space-accounting",
                  "slot " + std::to_string(s) + " cell starts at " +
                      std::to_string(offset) + " below free_end " +
                      std::to_string(free_end));
    }
    min_live_offset = std::min(min_live_offset, size_t(offset));
    live.emplace_back(offset, length);
  }

  std::sort(live.begin(), live.end());
  for (size_t i = 0; i + 1 < live.size(); ++i) {
    if (size_t(live[i].first) + live[i].second > live[i + 1].first) {
      report->Add(CheckSeverity::kError, kSub, "cell-overlap",
                  "cells at offsets " + std::to_string(live[i].first) +
                      " and " + std::to_string(live[i + 1].first) +
                      " overlap");
    }
  }
  // free_end at or below the lowest live cell is exact accounting; bytes
  // between free_end and the lowest cell are holes reclaimed by Compact.
  if (!live.empty() && free_end > min_live_offset) {
    report->Add(CheckSeverity::kError, kSub, "free-space-accounting",
                "free_end " + std::to_string(free_end) +
                    " overlaps the lowest live cell at " +
                    std::to_string(min_live_offset));
  }
  return Status::OK();
}

// --- column files -----------------------------------------------------------

Status CheckColumnFile(const ColumnFile& file, CheckReport* report) {
  const char* kSub = "column_file";
  const auto& pages = CheckAccess::Pages(file);
  BufferPool* pool = CheckAccess::Pool(file);
  uint64_t count = file.size();
  size_t expect_pages =
      size_t((count + ColumnFile::kCellsPerPage - 1) /
             ColumnFile::kCellsPerPage);
  if (pages.size() != expect_pages) {
    report->Add(CheckSeverity::kError, kSub, "page-count",
                std::to_string(count) + " cells need " +
                    std::to_string(expect_pages) + " pages but " +
                    std::to_string(pages.size()) + " are mapped");
    return Status::OK();
  }
  for (size_t p = 0; p < pages.size(); ++p) {
    Result<Page*> fetched = pool->FetchPage(pages[p]);
    if (!fetched.ok()) {
      report->Add(CheckSeverity::kError, kSub, "page-unreadable",
                  "page " + std::to_string(pages[p]) + ": " +
                      fetched.status().ToString());
      continue;
    }
    const Page& page = *fetched.value();
    uint32_t stored;
    std::memcpy(&stored, page.bytes() + CheckAccess::ColumnCountOff(), 4);
    uint64_t expect_cells =
        std::min<uint64_t>(ColumnFile::kCellsPerPage,
                           count - uint64_t(p) * ColumnFile::kCellsPerPage);
    if (stored != expect_cells) {
      report->Add(CheckSeverity::kError, kSub, "cell-count",
                  "page " + std::to_string(p) + " header says " +
                      std::to_string(stored) + " cells, accounting says " +
                      std::to_string(expect_cells));
    }
    // Validity bits past the page's cell count must stay clear — a set
    // tail bit means a bitmap write landed on the wrong ordinal.
    for (size_t i = expect_cells; i < ColumnFile::kCellsPerPage; ++i) {
      uint8_t byte =
          page.bytes()[CheckAccess::ColumnBitmapOff() + i / 8];
      if ((byte >> (i % 8)) & 1) {
        report->Add(CheckSeverity::kError, kSub, "bitmap-tail",
                    "page " + std::to_string(p) + " validity bit " +
                        std::to_string(i) + " set past the cell count");
        break;
      }
    }
    STATDB_RETURN_IF_ERROR(pool->UnpinPage(pages[p], /*dirty=*/false));
  }
  return Status::OK();
}

Status CheckRleRuns(const std::vector<RleRun>& runs, uint64_t expected_cells,
                    CheckReport* report) {
  const char* kSub = "rle";
  uint64_t total = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    total += runs[i].length;
    if (runs[i].length == 0) {
      report->Add(CheckSeverity::kError, kSub, "zero-run",
                  "run " + std::to_string(i) + " has zero length");
    }
    if (i > 0 && runs[i].present == runs[i - 1].present &&
        (!runs[i].present || runs[i].value == runs[i - 1].value)) {
      report->Add(CheckSeverity::kWarning, kSub, "non-canonical",
                  "runs " + std::to_string(i - 1) + "," +
                      std::to_string(i) + " are mergeable");
    }
  }
  if (total != expected_cells) {
    report->Add(CheckSeverity::kError, kSub, "length-sum",
                "run lengths sum to " + std::to_string(total) +
                    " but the column holds " +
                    std::to_string(expected_cells) + " cells");
  }
  return Status::OK();
}

Status CheckCompressedColumnFile(const CompressedColumnFile& file,
                                 CheckReport* report) {
  const char* kSub = "compressed_column";
  const auto& pages = CheckAccess::Pages(file);
  const auto& starts = CheckAccess::PageStarts(file);
  BufferPool* pool = CheckAccess::Pool(file);
  if (pages.size() != starts.size()) {
    report->Add(CheckSeverity::kError, kSub, "directory-size",
                "page directory has " + std::to_string(starts.size()) +
                    " entries for " + std::to_string(pages.size()) +
                    " pages");
    return Status::OK();
  }
  uint64_t ordinal = 0;
  uint64_t runs_seen = 0;
  std::vector<RleRun> all_runs;
  for (size_t p = 0; p < pages.size(); ++p) {
    if (starts[p] != ordinal) {
      report->Add(CheckSeverity::kError, kSub, "directory-ordinal",
                  "page " + std::to_string(p) + " directory start is " +
                      std::to_string(starts[p]) + ", accounting says " +
                      std::to_string(ordinal));
    }
    Result<Page*> fetched = pool->FetchPage(pages[p]);
    if (!fetched.ok()) {
      report->Add(CheckSeverity::kError, kSub, "page-unreadable",
                  "page " + std::to_string(pages[p]) + ": " +
                      fetched.status().ToString());
      continue;
    }
    const Page& page = *fetched.value();
    uint32_t n;
    std::memcpy(&n, page.bytes(), 4);
    if (n > CheckAccess::RunsPerPage()) {
      report->Add(CheckSeverity::kError, kSub, "run-count",
                  "page " + std::to_string(p) + " claims " +
                      std::to_string(n) + " runs, capacity is " +
                      std::to_string(CheckAccess::RunsPerPage()));
      n = 0;
    }
    for (uint32_t r = 0; r < n; ++r) {
      const uint8_t* base = page.bytes() + 8 + size_t(r) * 13;
      RleRun run;
      std::memcpy(&run.value, base, 8);
      std::memcpy(&run.length, base + 8, 4);
      run.present = base[12] != 0;
      ordinal += run.length;
      all_runs.push_back(run);
    }
    runs_seen += n;
    STATDB_RETURN_IF_ERROR(pool->UnpinPage(pages[p], /*dirty=*/false));
  }
  if (runs_seen != file.run_count()) {
    report->Add(CheckSeverity::kError, kSub, "run-accounting",
                "pages hold " + std::to_string(runs_seen) +
                    " runs but run_count() reports " +
                    std::to_string(file.run_count()));
  }
  STATDB_RETURN_IF_ERROR(CheckRleRuns(all_runs, file.size(), report));
  return Status::OK();
}

// --- summary database -------------------------------------------------------

namespace {

/// Parsed view of one head record and its derived expectations.
struct HeadState {
  SummaryDatabase::HeadInfo info;
  std::vector<std::string> attributes;
  bool decoded = false;
};

}  // namespace

Status CheckSummaryDb(SummaryDatabase* db, CheckReport* report) {
  const char* kSub = "summary_db";
  // One pass collects every index record; classification happens off the
  // scan so the checker never mutates or re-enters the tree mid-iteration.
  std::vector<std::pair<std::string, std::string>> records;
  STATDB_RETURN_IF_ERROR(db->index()->ScanRange(
      "", "", [&records](const std::string& k, const std::string& v) {
        records.emplace_back(k, v);
        return true;
      }));

  std::map<std::string, HeadState> heads;
  std::vector<std::pair<std::string, uint32_t>> chunks;  // (primary, index)
  std::vector<std::pair<std::string, std::string>> refs;  // (attr, primary)
  std::map<std::string, std::string> chunk_payloads;      // full chunk key

  for (const auto& [key, value] : records) {
    size_t chunk_pos = key.find(SummaryDatabase::kChunkSep);
    size_t ref_pos = key.find(SummaryDatabase::kRefSep);
    if (chunk_pos != std::string::npos) {
      std::string primary = key.substr(0, chunk_pos);
      std::string suffix = key.substr(chunk_pos + 1);
      bool numeric = !suffix.empty() &&
                     std::all_of(suffix.begin(), suffix.end(),
                                 [](unsigned char c) {
                                   return std::isdigit(c) != 0;
                                 });
      if (!numeric) {
        report->Add(CheckSeverity::kError, kSub, "chunk-key",
                    "continuation record with non-numeric index: " +
                        primary);
        continue;
      }
      chunks.emplace_back(primary,
                          static_cast<uint32_t>(std::stoul(suffix)));
      chunk_payloads[key] = value;
    } else if (ref_pos != std::string::npos) {
      refs.emplace_back(key.substr(0, ref_pos), key.substr(ref_pos + 1));
    } else {
      HeadState state;
      Result<SummaryDatabase::HeadInfo> info =
          SummaryDatabase::DecodeHeadRecord(value);
      if (!info.ok()) {
        report->Add(CheckSeverity::kError, kSub, "head-corrupt",
                    "head record '" + key + "' does not decode: " +
                        info.status().ToString());
      } else {
        state.info = std::move(info).value();
        state.decoded = true;
      }
      Result<SummaryKey> skey = SummaryKey::Decode(key);
      if (!skey.ok()) {
        report->Add(CheckSeverity::kError, kSub, "key-encoding",
                    "head key '" + key + "' does not decode as a "
                        "SummaryKey");
      } else {
        state.attributes = skey.value().attributes;
        if (skey.value().Encode() != key) {
          report->Add(CheckSeverity::kError, kSub, "key-encoding",
                      "head key '" + key + "' does not round-trip");
        }
      }
      heads.emplace(key, std::move(state));
    }
  }

  // entry_count_ vs. the tree walk.
  if (heads.size() != db->entry_count()) {
    report->Add(CheckSeverity::kError, kSub, "entry-count-drift",
                "tree walk found " + std::to_string(heads.size()) +
                    " head records but entry_count() reports " +
                    std::to_string(db->entry_count()));
  }

  // Continuation chunks: every chunk belongs to a chunked head and lies
  // inside its declared chain; every declared chunk exists; the stitched
  // payload deserializes.
  std::map<std::string, std::set<uint32_t>> chunks_by_head;
  for (const auto& [primary, index] : chunks) {
    auto it = heads.find(primary);
    if (it == heads.end()) {
      report->Add(CheckSeverity::kError, kSub, "orphan-chunk",
                  "continuation chunk " + std::to_string(index) +
                      " of '" + primary + "' has no head record");
      continue;
    }
    if (it->second.decoded && !it->second.info.chunked) {
      report->Add(CheckSeverity::kError, kSub, "orphan-chunk",
                  "head '" + primary + "' is not chunked but chunk " +
                      std::to_string(index) + " exists");
      continue;
    }
    if (it->second.decoded && index >= it->second.info.nchunks) {
      report->Add(CheckSeverity::kError, kSub, "orphan-chunk",
                  "chunk " + std::to_string(index) + " of '" + primary +
                      "' is past the declared " +
                      std::to_string(it->second.info.nchunks) + " chunks");
      continue;
    }
    chunks_by_head[primary].insert(index);
  }
  for (const auto& [key, state] : heads) {
    if (!state.decoded) continue;
    std::string payload;
    bool complete = true;
    if (state.info.chunked) {
      if (state.info.nchunks == 0) {
        report->Add(CheckSeverity::kError, kSub, "chunk-missing",
                    "head '" + key + "' is chunked with zero chunks");
        continue;
      }
      const std::set<uint32_t>& present = chunks_by_head[key];
      for (uint32_t i = 0; i < state.info.nchunks; ++i) {
        if (!present.contains(i)) {
          report->Add(CheckSeverity::kError, kSub, "chunk-missing",
                      "head '" + key + "' is missing continuation chunk " +
                          std::to_string(i) + " of " +
                          std::to_string(state.info.nchunks));
          complete = false;
        }
      }
      if (complete) {
        for (uint32_t i = 0; i < state.info.nchunks; ++i) {
          char buf[16];
          std::snprintf(buf, sizeof(buf), "%06u", i);
          payload += chunk_payloads[key + SummaryDatabase::kChunkSep + buf];
        }
      }
    } else {
      payload = state.info.inline_payload;
    }
    if (complete) {
      std::vector<uint8_t> bytes(payload.begin(), payload.end());
      if (!SummaryResult::Deserialize(bytes).ok()) {
        report->Add(CheckSeverity::kError, kSub, "payload-corrupt",
                    "head '" + key +
                        "' payload does not deserialize as a "
                        "SummaryResult");
      }
    }
    // Multi-attribute entries must be findable from every input
    // attribute: a reference record per non-leading attribute.
    for (size_t i = 1; i < state.attributes.size(); ++i) {
      bool found = false;
      for (const auto& [attr, primary] : refs) {
        if (attr == state.attributes[i] && primary == key) {
          found = true;
          break;
        }
      }
      if (!found) {
        report->Add(CheckSeverity::kError, kSub, "ref-missing",
                    "head '" + key + "' has no reference record under "
                        "attribute '" + state.attributes[i] + "'");
      }
    }
  }

  // Reference records resolve to live heads that actually list the
  // referencing attribute.
  for (const auto& [attr, primary] : refs) {
    auto it = heads.find(primary);
    if (it == heads.end()) {
      report->Add(CheckSeverity::kError, kSub, "dangling-ref",
                  "reference under '" + attr + "' points at missing "
                      "head '" + primary + "'");
      continue;
    }
    const auto& attrs = it->second.attributes;
    bool listed = false;
    for (size_t i = 1; i < attrs.size(); ++i) {
      if (attrs[i] == attr) listed = true;
    }
    if (!listed) {
      report->Add(CheckSeverity::kError, kSub, "ref-mismatch",
                  "reference under '" + attr + "' points at head '" +
                      primary + "' which does not list it as a "
                      "non-leading attribute");
    }
  }
  return Status::OK();
}

// --- differential oracle ----------------------------------------------------

namespace {

bool ApproxEqual(double a, double b, double abs_tol, double rel_tol) {
  if (std::isnan(a) && std::isnan(b)) return true;
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return std::fabs(a - b) <=
         abs_tol + rel_tol * std::max(std::fabs(a), std::fabs(b));
}

bool VectorsApproxEqual(const std::vector<double>& a,
                        const std::vector<double>& b, double abs_tol,
                        double rel_tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ApproxEqual(a[i], b[i], abs_tol, rel_tol)) return false;
  }
  return true;
}

}  // namespace

bool SummaryResultsApproxEqual(const SummaryResult& a, const SummaryResult& b,
                               double abs_tol, double rel_tol) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case SummaryResultKind::kScalar:
      return ApproxEqual(a.AsScalar().value(), b.AsScalar().value(), abs_tol,
                         rel_tol);
    case SummaryResultKind::kVector:
      return VectorsApproxEqual(*a.AsVector().value(), *b.AsVector().value(),
                                abs_tol, rel_tol);
    case SummaryResultKind::kHistogram: {
      const Histogram* ha = a.AsHistogram().value();
      const Histogram* hb = b.AsHistogram().value();
      return VectorsApproxEqual(ha->edges, hb->edges, abs_tol, rel_tol) &&
             ha->counts == hb->counts && ha->below == hb->below &&
             ha->above == hb->above;
    }
    case SummaryResultKind::kModel: {
      const LinearFit* fa = a.AsModel().value();
      const LinearFit* fb = b.AsModel().value();
      return fa->n == fb->n &&
             ApproxEqual(fa->slope, fb->slope, abs_tol, rel_tol) &&
             ApproxEqual(fa->intercept, fb->intercept, abs_tol, rel_tol) &&
             ApproxEqual(fa->r_squared, fb->r_squared, abs_tol, rel_tol) &&
             ApproxEqual(fa->residual_stddev, fb->residual_stddev, abs_tol,
                         rel_tol);
    }
    case SummaryResultKind::kCrossTab: {
      const CrossTab* ca = a.AsCrossTab().value();
      const CrossTab* cb = b.AsCrossTab().value();
      return ca->row_labels == cb->row_labels &&
             ca->col_labels == cb->col_labels && ca->counts == cb->counts;
    }
    case SummaryResultKind::kText:
      return *a.AsText().value() == *b.AsText().value();
  }
  return false;
}

namespace {

/// Recomputes a bivariate result the way StatisticalDbms computes it,
/// independently re-deriving the answer from the raw columns. NOT_FOUND
/// means "this oracle cannot verify that function".
Result<SummaryResult> RecomputeMultiAttribute(const SummaryKey& key,
                                              const ViewOracle& oracle) {
  if (key.attributes.size() != 2 || !oracle.read_column) {
    return NotFoundError("unverifiable multi-attribute entry");
  }
  const std::string& fn = key.function;
  STATDB_ASSIGN_OR_RETURN(std::vector<Value> va,
                          oracle.read_column(key.attributes[0]));
  STATDB_ASSIGN_OR_RETURN(std::vector<Value> vb,
                          oracle.read_column(key.attributes[1]));
  if (fn == "correlation" || fn == "covariance" || fn == "regression") {
    std::vector<double> xs, ys;
    for (size_t i = 0; i < va.size() && i < vb.size(); ++i) {
      if (va[i].is_null() || vb[i].is_null()) continue;
      Result<double> x = va[i].ToDouble();
      Result<double> y = vb[i].ToDouble();
      if (!x.ok() || !y.ok()) continue;
      xs.push_back(x.value());
      ys.push_back(y.value());
    }
    if (fn == "correlation") {
      STATDB_ASSIGN_OR_RETURN(double r, PearsonR(xs, ys));
      return SummaryResult::Scalar(r);
    }
    if (fn == "covariance") {
      STATDB_ASSIGN_OR_RETURN(double c, Covariance(xs, ys));
      return SummaryResult::Scalar(c);
    }
    STATDB_ASSIGN_OR_RETURN(LinearFit fit, FitLinear(xs, ys));
    return SummaryResult::Model(fit);
  }
  if (fn == "crosstab" || fn == "chi2_independence") {
    Table pair{
        Schema({Attribute::Category(key.attributes[0], DataType::kInt64),
                Attribute::Category(key.attributes[1], DataType::kInt64)})};
    for (size_t i = 0; i < va.size() && i < vb.size(); ++i) {
      Row row = {va[i], vb[i]};
      STATDB_RETURN_IF_ERROR(pair.AppendRow(std::move(row)));
    }
    STATDB_ASSIGN_OR_RETURN(
        CrossTab ct,
        BuildCrossTab(pair, key.attributes[0], key.attributes[1]));
    if (fn == "crosstab") return SummaryResult::Contingency(std::move(ct));
    STATDB_ASSIGN_OR_RETURN(TestResult tr, ChiSquaredIndependence(ct));
    return SummaryResult::Vector({tr.statistic, tr.dof, tr.p_value});
  }
  if (fn == "welch_t") {
    STATDB_ASSIGN_OR_RETURN(FunctionParams params,
                            FunctionParams::Decode(key.params));
    STATDB_ASSIGN_OR_RETURN(double code_a, params.Get("a"));
    STATDB_ASSIGN_OR_RETURN(double code_b, params.Get("b"));
    std::vector<double> group_a, group_b;
    for (size_t i = 0; i < va.size() && i < vb.size(); ++i) {
      if (va[i].is_null() || vb[i].is_null()) continue;
      Result<int64_t> code = vb[i].ToInt();
      Result<double> v = va[i].ToDouble();
      if (!code.ok() || !v.ok()) continue;
      if (double(*code) == code_a) group_a.push_back(*v);
      if (double(*code) == code_b) group_b.push_back(*v);
    }
    STATDB_ASSIGN_OR_RETURN(TestResult tr, WelchTTest(group_a, group_b));
    return SummaryResult::Vector({tr.statistic, tr.dof, tr.p_value});
  }
  return NotFoundError("unverifiable multi-attribute function " + fn);
}

}  // namespace

Status AuditSummaryAgainstView(SummaryDatabase* summary,
                               const FunctionRegistry& functions,
                               const ViewOracle& oracle, CheckReport* report,
                               const AuditOptions& options) {
  const char* kSub = "summary_oracle";
  std::vector<SummaryEntry> entries;
  STATDB_RETURN_IF_ERROR(summary->ForEach([&](const SummaryEntry& e) {
    entries.push_back(e);
    return Status::OK();
  }));

  // Column reads are shared across every entry on the same attribute.
  std::map<std::string, std::vector<double>> numeric_cache;
  auto read_numeric =
      [&](const std::string& attr) -> Result<std::vector<double>> {
    auto it = numeric_cache.find(attr);
    if (it != numeric_cache.end()) return it->second;
    STATDB_ASSIGN_OR_RETURN(std::vector<double> data,
                            oracle.read_numeric(attr));
    numeric_cache.emplace(attr, data);
    return data;
  };

  for (const SummaryEntry& e : entries) {
    if (e.key.function == "note" ||
        e.result.kind() == SummaryResultKind::kText) {
      continue;  // annotations have no ground truth in the view
    }
    if (e.stale && !options.include_stale) {
      continue;  // declared drift is not silent drift
    }
    if (e.view_version > oracle.view_version) {
      report->Add(CheckSeverity::kError, kSub, "future-version",
                  e.key.ToString() + " was maintained at view version " +
                      std::to_string(e.view_version) +
                      " but the view is at " +
                      std::to_string(oracle.view_version));
    }

    Result<SummaryResult> fresh = Status::OK();
    if (e.key.attributes.size() == 1) {
      if (!oracle.read_numeric ||
          !functions.Find(e.key.function).ok()) {
        report->Add(CheckSeverity::kInfo, kSub, "unverifiable",
                    e.key.ToString() +
                        " has no registered recomputation rule");
        continue;
      }
      Result<FunctionParams> params = FunctionParams::Decode(e.key.params);
      if (!params.ok()) {
        report->Add(CheckSeverity::kError, kSub, "params-corrupt",
                    e.key.ToString() + " carries undecodable params");
        continue;
      }
      Result<std::vector<double>> data = read_numeric(e.key.attributes[0]);
      if (!data.ok()) {
        report->Add(CheckSeverity::kError, kSub, "column-unreadable",
                    e.key.ToString() + ": " + data.status().ToString());
        continue;
      }
      const Histogram* cached_hist = nullptr;
      if (e.key.function == "histogram" &&
          e.result.kind() == SummaryResultKind::kHistogram) {
        cached_hist = e.result.AsHistogram().value();
      }
      if (cached_hist != nullptr && cached_hist->edges.size() >= 2) {
        // Incrementally maintained histograms freeze their bucket edges
        // while updates move the column's min/max, so a recompute with
        // auto-derived edges is the wrong ground truth. Recount the
        // current column into the cached edges instead: the counts (and
        // below/above spill) must still describe the data exactly.
        Result<Histogram> recount = BuildHistogram(
            data.value(), cached_hist->buckets(), cached_hist->edges.front(),
            cached_hist->edges.back());
        if (recount.ok()) {
          fresh = SummaryResult::Histo(std::move(recount).value());
        } else {
          fresh = std::move(recount).status();
        }
      } else {
        fresh = functions.Compute(e.key.function, data.value(),
                                  params.value());
      }
    } else {
      fresh = RecomputeMultiAttribute(e.key, oracle);
      if (!fresh.ok() && fresh.status().code() == StatusCode::kNotFound) {
        report->Add(CheckSeverity::kInfo, kSub, "unverifiable",
                    e.key.ToString() +
                        " has no oracle recomputation rule");
        continue;
      }
    }
    if (!fresh.ok()) {
      // The view no longer supports computing a value the cache serves as
      // fresh — e.g. every cell of the column went missing. That is drift.
      report->Add(CheckSeverity::kError, kSub, "summary-drift",
                  e.key.ToString() + " is cached but recomputation "
                      "fails: " + fresh.status().ToString());
      continue;
    }
    if (!SummaryResultsApproxEqual(e.result, fresh.value(),
                                   options.abs_tolerance,
                                   options.rel_tolerance)) {
      report->Add(CheckSeverity::kError, kSub, "summary-drift",
                  e.key.ToString() + " cached " + e.result.ToString() +
                      " but the view recomputes to " +
                      fresh.value().ToString());
    }
  }
  return Status::OK();
}

}  // namespace statdb

#ifndef STATDB_CHECK_CHECK_H_
#define STATDB_CHECK_CHECK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/value.h"
#include "rules/function_registry.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/column_file.h"
#include "storage/device.h"
#include "storage/compressed_column_file.h"
#include "storage/page.h"
#include "storage/rle.h"
#include "summary/summary_db.h"

namespace statdb {

/// `statdb::check` — deep structural auditors for every storage and cache
/// structure, plus the differential summary-vs-view oracle.
///
/// The Summary Database's whole value proposition rests on cached results
/// staying coherent with the view under incremental maintenance (§4.1–
/// §4.3); these checkers make that coherence machine-checkable. Each
/// checker walks one subsystem and appends structured findings to a
/// CheckReport; the returned Status is OK unless the audit itself could
/// not run (an I/O failure mid-walk), so callers always get the full list
/// of violations rather than the first one.

enum class CheckSeverity : uint8_t {
  kInfo = 0,     // observation, never a failure (e.g. unverifiable entry)
  kWarning = 1,  // legal-but-suspect state (e.g. underfull B+-tree leaf)
  kError = 2,    // invariant violation; the structure is corrupt
};

std::string_view CheckSeverityName(CheckSeverity s);

/// One finding: which subsystem, which named invariant, and the detail.
struct CheckIssue {
  CheckSeverity severity = CheckSeverity::kError;
  std::string subsystem;  // "buffer_pool", "btree", "summary_db", ...
  std::string invariant;  // stable slug, e.g. "leaf-chain", "pin-leak"
  std::string message;    // human-readable specifics

  std::string ToString() const;
};

/// Accumulates findings across any number of checker invocations.
class CheckReport {
 public:
  void Add(CheckSeverity severity, std::string subsystem,
           std::string invariant, std::string message);

  bool ok() const { return errors_ == 0; }
  size_t error_count() const { return errors_; }
  size_t warning_count() const { return warnings_; }
  const std::vector<CheckIssue>& issues() const { return issues_; }

  /// Findings matching an invariant slug (testing convenience).
  std::vector<const CheckIssue*> FindInvariant(
      const std::string& invariant) const;
  bool HasError(const std::string& invariant) const;

  /// One line per finding, plus a PASS/FAIL trailer.
  std::string ToString() const;

  /// OK when error-free; otherwise DATA_LOSS carrying a summary of the
  /// first few errors — the shape Dbms propagates when an audit-after-
  /// update trips.
  Status ToStatus() const;

 private:
  std::vector<CheckIssue> issues_;
  size_t errors_ = 0;
  size_t warnings_ = 0;
};

// --- structural checkers ---------------------------------------------------

struct BufferPoolCheckOptions {
  /// Expect no outstanding pins (true between operations; every public
  /// statdb entry point unpins before returning).
  bool expect_quiescent = true;
};

/// Pin counts, page_table_/lru_/frames_/free-list mutual consistency, and
/// duplicate-PageId detection.
Status CheckBufferPool(const BufferPool& pool, CheckReport* report,
                       const BufferPoolCheckOptions& options = {});

/// Key ordering, separator bounds, uniform leaf depth, sibling-link chain,
/// child reachability vs. allocated pages, size accounting, and
/// fill-factor bounds (warnings — deletion never rebalances by design).
Status CheckBPlusTree(const BPlusTree& tree, CheckReport* report);

/// Slot directory in bounds, no overlapping live cells, exact free-space
/// accounting. Operates on a raw page image (caller owns pinning).
Status CheckSlottedPage(const Page& page, CheckReport* report);

/// Page-count vs. cell-count accounting, per-page count fields, and
/// validity-bitmap tails.
Status CheckColumnFile(const ColumnFile& file, CheckReport* report);

/// Run-length sums equal the logical row count; no zero-length runs;
/// canonical (fully merged) form.
Status CheckRleRuns(const std::vector<RleRun>& runs, uint64_t expected_cells,
                    CheckReport* report);

/// Page directory monotonicity and run/cell accounting of the stored
/// compressed column.
Status CheckCompressedColumnFile(const CompressedColumnFile& file,
                                 CheckReport* report);

/// entry_count_ vs. a full tree walk; every reference record resolves to
/// a live head entry; no orphaned or missing continuation chunks; heads
/// decode and their payloads deserialize.
Status CheckSummaryDb(SummaryDatabase* db, CheckReport* report);

/// Walks every stored page image on the device and re-verifies the CRC of
/// each checksummed page (an error finding marks silent corruption the
/// buffer pool would catch on its next fetch), and flags any page whose
/// header LSN exceeds `max_lsn` — under force-at-commit no page may
/// claim a commit the redo log has not recorded. Pages never written
/// through a checksumming pool are skipped.
Status CheckDeviceChecksums(const SimulatedDevice& device, uint64_t max_lsn,
                            CheckReport* report);

// --- differential oracle ----------------------------------------------------

/// Column access the oracle uses to recompute cached results from the
/// base view. Kept as callbacks so statdb_check stays below statdb_core
/// in the dependency DAG (Dbms wires these to its ConcreteView).
struct ViewOracle {
  uint64_t view_version = 0;
  /// Non-missing numeric cells of one attribute (summary-function input).
  std::function<Result<std::vector<double>>(const std::string&)> read_numeric;
  /// Raw cells of one attribute, nulls included (bivariate input).
  std::function<Result<std::vector<Value>>(const std::string&)> read_column;
};

struct AuditOptions {
  /// |cached - recomputed| <= abs + rel * |recomputed| counts as equal.
  double abs_tolerance = 1e-9;
  double rel_tolerance = 1e-9;
  /// Also verify stale-flagged entries (normally skipped: staleness is
  /// the system *declaring* drift, so drift there is not a bug).
  bool include_stale = false;
};

/// The headline check: recomputes every fresh cached `(function,
/// attributes)` result from the base view and compares it (within FP
/// tolerance) to the cached value — catching incremental-maintenance
/// drift in the §4.2 rules that no structural walk can see. Entries whose
/// function the oracle cannot recompute are reported at kInfo severity.
Status AuditSummaryAgainstView(SummaryDatabase* summary,
                               const FunctionRegistry& functions,
                               const ViewOracle& oracle, CheckReport* report,
                               const AuditOptions& options = {});

/// FP-tolerant comparison used by the oracle (exposed for tests): true
/// when `a` and `b` have the same kind and shape and all numeric fields
/// agree within tolerance (NaN compares equal to NaN).
bool SummaryResultsApproxEqual(const SummaryResult& a, const SummaryResult& b,
                               double abs_tolerance, double rel_tolerance);

}  // namespace statdb

#endif  // STATDB_CHECK_CHECK_H_

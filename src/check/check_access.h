#ifndef STATDB_CHECK_CHECK_ACCESS_H_
#define STATDB_CHECK_CHECK_ACCESS_H_

#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/column_file.h"
#include "storage/compressed_column_file.h"
#include "storage/device.h"
#include "summary/summary_db.h"

namespace statdb {

/// The auditor's keyhole into otherwise-private structure state.
///
/// Every audited class befriends CheckAccess; the checkers in check.cc go
/// through these read-only accessors instead of widening each class's
/// public API. Nothing here mutates — an audit must never repair or
/// disturb the structures it inspects.
class CheckAccess {
 public:
  // --- BufferPool ---------------------------------------------------------
  using PoolFrame = BufferPool::Frame;

  /// The pool's internal latch, exposed so the structural walk can hold
  /// it across a consistent read of frames/page-table/LRU state. Before
  /// this accessor existed the auditor read those structures unlatched
  /// and was safe only by the quiescence convention; the thread safety
  /// analysis rejects that now, and CheckBufferPool audits are valid
  /// even while scan workers pin and unpin concurrently.
  static Mutex& PoolMutex(const BufferPool& pool)
      STATDB_RETURN_CAPABILITY(pool.mu_) {
    return pool.mu_;
  }

  static const std::deque<PoolFrame>& Frames(const BufferPool& pool)
      STATDB_REQUIRES(pool.mu_) {
    return pool.frames_;
  }
  static const std::vector<size_t>& FreeFrames(const BufferPool& pool)
      STATDB_REQUIRES(pool.mu_) {
    return pool.free_frames_;
  }
  static const std::unordered_map<PageId, size_t>& PageTable(
      const BufferPool& pool) STATDB_REQUIRES(pool.mu_) {
    return pool.page_table_;
  }
  static const std::list<size_t>& Lru(const BufferPool& pool)
      STATDB_REQUIRES(pool.mu_) {
    return pool.lru_;
  }

  // --- BPlusTree ----------------------------------------------------------
  using TreeNode = BPlusTree::Node;

  static Result<TreeNode> LoadNode(const BPlusTree& tree, PageId pid) {
    return tree.LoadNode(pid);
  }
  static size_t NodeSerializedSize(const TreeNode& node) {
    return BPlusTree::SerializedSize(node);
  }
  static BufferPool* TreePool(const BPlusTree& tree) { return tree.pool_; }

  // --- ColumnFile ---------------------------------------------------------
  static const std::vector<PageId>& Pages(const ColumnFile& file) {
    return file.pages_;
  }
  static BufferPool* Pool(const ColumnFile& file) { return file.pool_; }
  static constexpr size_t ColumnCountOff() { return ColumnFile::kCountOff; }
  static constexpr size_t ColumnBitmapOff() { return ColumnFile::kBitmapOff; }
  static constexpr size_t ColumnCellsOff() { return ColumnFile::kCellsOff; }

  // --- SimulatedDevice ----------------------------------------------------

  /// Raw persisted page image, bypassing the cost model and fault
  /// injection — the auditor's media-integrity walk must observe the
  /// platter without charging or perturbing I/O. nullptr if out of range.
  static const Page* RawPage(const SimulatedDevice& dev, PageId id) {
    return dev.raw_page(id);
  }

  // --- CompressedColumnFile -----------------------------------------------
  static const std::vector<PageId>& Pages(const CompressedColumnFile& file) {
    return file.pages_;
  }
  static const std::vector<uint64_t>& PageStarts(
      const CompressedColumnFile& file) {
    return file.page_start_;
  }
  static BufferPool* Pool(const CompressedColumnFile& file) {
    return file.pool_;
  }
  static constexpr size_t RunsPerPage() {
    return CompressedColumnFile::kRunsPerPage;
  }
};

}  // namespace statdb

#endif  // STATDB_CHECK_CHECK_ACCESS_H_

#ifndef STATDB_CHECK_DB_AUDITOR_H_
#define STATDB_CHECK_DB_AUDITOR_H_

#include <string>

#include "check/check.h"
#include "common/status.h"

namespace statdb {

class StatisticalDbms;

/// Whole-database auditor: runs every structural checker plus the
/// differential summary-vs-view oracle against a live StatisticalDbms.
///
/// This is the `fsck` of statdb. It is invoked three ways:
///   - automatically after every Update/Rollback when the DBMS's
///     audit-after-update flag is on (the STATDB_AUDIT build default),
///   - explicitly from tests and the `audit` shell command,
///   - via the FsckDatabase() convenience wrapper.
///
/// Compiled into statdb_core (it needs StatisticalDbms) while the
/// checkers it drives live in the lower-level statdb_check library.
class DbAuditor {
 public:
  explicit DbAuditor(StatisticalDbms* dbms, AuditOptions options = {})
      : dbms_(dbms), options_(options) {}

  /// Audits one view: its Summary Database index structure, record web
  /// (chunks, references, entry count), and cached-result coherence
  /// against the view's current columns.
  Status AuditView(const std::string& view, CheckReport* report);

  /// Audits every view plus the shared disk buffer pool (which must be
  /// quiescent between operations).
  Status AuditAll(CheckReport* report);

 private:
  StatisticalDbms* dbms_;
  AuditOptions options_;
};

/// One-call fsck: audits everything and returns OK or a DATA_LOSS status
/// summarizing the violations. When `report_text` is non-null it receives
/// the full finding-per-line report (PASS/FAIL trailer included).
Status FsckDatabase(StatisticalDbms* dbms, std::string* report_text = nullptr,
                    const AuditOptions& options = {});

}  // namespace statdb

#endif  // STATDB_CHECK_DB_AUDITOR_H_

#include "check/db_auditor.h"

#include <vector>

#include "core/dbms.h"
#include "core/view.h"
#include "storage/buffer_pool.h"
#include "summary/summary_db.h"

namespace statdb {

Status DbAuditor::AuditView(const std::string& view, CheckReport* report) {
  STATDB_ASSIGN_OR_RETURN(SummaryDatabase * summary,
                          dbms_->GetSummaryDb(view));
  STATDB_ASSIGN_OR_RETURN(ConcreteView * concrete, dbms_->GetView(view));

  // Structure first: a corrupt index makes the oracle's reads suspect.
  STATDB_RETURN_IF_ERROR(CheckBPlusTree(*summary->index(), report));
  STATDB_RETURN_IF_ERROR(CheckSummaryDb(summary, report));

  ViewOracle oracle;
  oracle.view_version = concrete->version();
  oracle.read_numeric =
      [concrete](const std::string& attr) -> Result<std::vector<double>> {
    return concrete->ReadNumericColumn(attr);
  };
  oracle.read_column =
      [concrete](const std::string& attr) -> Result<std::vector<Value>> {
    return concrete->ReadColumn(attr);
  };
  return AuditSummaryAgainstView(summary, dbms_->management_db().functions(),
                                 oracle, report, options_);
}

Status DbAuditor::AuditAll(CheckReport* report) {
  for (const std::string& view : dbms_->ViewNames()) {
    STATDB_RETURN_IF_ERROR(AuditView(view, report));
  }
  // The audit itself pins and unpins pages, so quiescence is checked
  // last, once every walk has released its frames.
  Result<BufferPool*> disk =
      dbms_->storage()->GetPool(dbms_->disk_device_name());
  if (disk.ok()) {
    STATDB_RETURN_IF_ERROR(CheckBufferPool(*disk.value(), report));
  }
  if (dbms_->durability_enabled()) {
    // Every checksummed page image on the platter must verify, and no
    // page may claim an LSN the redo log has not committed
    // (force-at-commit means the log always leads the data pages).
    Result<SimulatedDevice*> disk_dev =
        dbms_->storage()->GetDevice(dbms_->disk_device_name());
    if (disk_dev.ok()) {
      STATDB_RETURN_IF_ERROR(CheckDeviceChecksums(
          *disk_dev.value(), dbms_->last_committed_lsn(), report));
    }
    // A torn log tail is expected debris after a crash, not corruption —
    // recovery discards it by overwrite — so it is surfaced at kInfo.
    const WalStats ws = dbms_->redo_log()->stats();
    if (ws.torn_tail_bytes > 0) {
      report->Add(CheckSeverity::kInfo, "wal", "torn-tail",
                  std::to_string(ws.torn_tail_bytes) +
                      " trailing bytes discarded by the last log scan");
    }
  }
  return Status::OK();
}

Status FsckDatabase(StatisticalDbms* dbms, std::string* report_text,
                    const AuditOptions& options) {
  CheckReport report;
  DbAuditor auditor(dbms, options);
  STATDB_RETURN_IF_ERROR(auditor.AuditAll(&report));
  if (report_text != nullptr) *report_text = report.ToString();
  return report.ToStatus();
}

}  // namespace statdb

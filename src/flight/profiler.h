#ifndef STATDB_FLIGHT_PROFILER_H_
#define STATDB_FLIGHT_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/sync.h"

namespace statdb {

/// statdb::flight — the workload profiler (DESIGN.md §12).
///
/// The paper's §4.3 maintain-vs-invalidate choice is a per-attribute
/// economic decision: maintain the cached statistic incrementally when
/// queries on the attribute outnumber updates, invalidate (recompute on
/// demand) when updates dominate, do nothing special when the attribute
/// is write-only. The Summary Database exists because "the same functions
/// are applied to the same attributes repeatedly" — but until now nothing
/// measured *which* functions and *which* attributes. The profiler is
/// that measurement: two heatmaps (per-(function, attribute) and
/// per-attribute) folded from the query/update paths, plus the derived
/// §4.3 advice per attribute.
///
/// The profiler is deliberately exact, not sampled: it is fed once per
/// query/update (not per row), with the precise view/function/attribute
/// strings, so `Dbms::WorkloadReport()` can be trusted as the decision
/// input rather than being a fuzzy mirror of truncated flight labels.
class WorkloadProfiler {
 public:
  /// How a query on (function, attribute) was answered. Mirrors core's
  /// AnswerSource (flight sits below core in the dependency DAG).
  enum class QueryOutcome : uint8_t {
    kComputed = 0,
    kCacheHit = 1,
    kStaleServe = 2,
    kInferred = 3,
    kFailed = 4,  // refused (staleness gate, degraded) or errored
  };

  /// Per-(function, attribute) heatmap cell.
  struct FunctionCell {
    uint64_t queries = 0;
    uint64_t computed = 0;
    uint64_t cache_hits = 0;
    uint64_t stale_serves = 0;
    uint64_t inferred = 0;
    uint64_t failed = 0;
    double total_ms = 0;
  };

  /// Per-attribute heatmap row — the §4.3 decision input.
  struct AttributeRow {
    uint64_t accesses = 0;      // queries naming the attribute
    uint64_t updates = 0;       // Update() calls touching it
    uint64_t cells_updated = 0; // total cells those updates changed
    double query_ms = 0;
  };

  void NoteQuery(const std::string& view, const std::string& function,
                 const std::string& attribute, QueryOutcome outcome,
                 double wall_ms);
  void NoteUpdate(const std::string& view, const std::string& attribute,
                  uint64_t cells);

  /// The heatmap row for one "view.attr" (zeros when the attribute was
  /// never touched) — the delta policy controller's decision input.
  AttributeRow AttributeStats(const std::string& view,
                              const std::string& attribute) const;

  uint64_t total_queries() const;
  uint64_t total_updates() const;

  /// §4.3 advice for one access/update ratio. Exposed so tests and the
  /// report renderers share one decision rule:
  ///   updates == 0            → "cache-only"  (nothing ever invalidates)
  ///   accesses/updates >= 4   → "maintain"    (reads dominate; keep the
  ///                                            summary incrementally)
  ///   accesses/updates < 1    → "invalidate"  (writes dominate; recompute
  ///                                            on demand)
  ///   otherwise               → "borderline"
  static const char* Advice(uint64_t accesses, uint64_t updates);

  /// {"workload": {"total_queries", "total_updates",
  ///               "functions": {"view.fn(attr)": {...cell...}},
  ///               "attributes": {"view.attr": {...row, advice}}}}
  std::string ReportJson() const;

  /// The statdb-top rendering: attributes sorted by traffic, with the
  /// hottest `top_n` rows of each map.
  std::string ReportText(size_t top_n = 10) const;

  void Reset();

 private:
  mutable Mutex mu_;
  // "view.fn(attr)" / "view.attr" heatmaps.
  std::map<std::string, FunctionCell> functions_ STATDB_GUARDED_BY(mu_);
  std::map<std::string, AttributeRow> attributes_ STATDB_GUARDED_BY(mu_);
  uint64_t total_queries_ STATDB_GUARDED_BY(mu_) = 0;
  uint64_t total_updates_ STATDB_GUARDED_BY(mu_) = 0;
};

}  // namespace statdb

#endif  // STATDB_FLIGHT_PROFILER_H_

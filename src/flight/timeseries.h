#ifndef STATDB_FLIGHT_TIMESERIES_H_
#define STATDB_FLIGHT_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/sync.h"

namespace statdb {

/// statdb::flight — periodic metric snapshots (DESIGN.md §12).
///
/// DumpMetrics() is a point-in-time photograph; regressions and workload
/// shifts live in the *differences* between photographs. The timeseries
/// keeps a bounded window of named-scalar snapshots (fed from
/// MetricsRegistry::Snapshot() plus the per-view/device stats core folds
/// in), emits consecutive deltas with derived rates, and renders the
/// newest point in Prometheus text exposition format for anything that
/// scrapes.
///
/// Canonical keys the rate derivation looks for (core's TakeStatSnapshot
/// writes them; absent keys simply yield no rate):
///   summary.lookups / summary.hits      → summary_hit_rate
///   io.bytes_read                       → scan_mb_per_s
///   wal.bytes_appended / wal.commits    → wal_bytes_per_commit
struct StatPoint {
  double t_ms = 0;    // recorder-epoch milliseconds of the snapshot
  uint64_t seq = 0;   // mutation count (or tick index) at the snapshot
  std::map<std::string, double> values;
};

class MetricsTimeseries {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit MetricsTimeseries(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  MetricsTimeseries(const MetricsTimeseries&) = delete;
  MetricsTimeseries& operator=(const MetricsTimeseries&) = delete;

  /// Appends a snapshot; the oldest point falls off past capacity.
  void Push(StatPoint point);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t total_pushed() const;

  /// {"timeseries": {"capacity", "count", "dropped",
  ///                 "base": {t_ms, seq, values},
  ///                 "deltas": [{dt_ms, from_seq, to_seq,
  ///                             delta: {key: Δvalue},
  ///                             rates: {summary_hit_rate, ...}}]}}
  /// Deltas are between consecutive surviving points; counters that went
  /// backwards (ResetAll between points) clamp to 0.
  std::string DumpJson() const;

  /// Prometheus text exposition of the newest point:
  ///   # TYPE statdb_<key> gauge
  ///   statdb_<key> <value>
  /// Keys are sanitized (non-alphanumerics → '_').
  std::string ExposeText() const;

  void Reset();

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<StatPoint> points_ STATDB_GUARDED_BY(mu_);
  uint64_t total_pushed_ STATDB_GUARDED_BY(mu_) = 0;
};

}  // namespace statdb

#endif  // STATDB_FLIGHT_TIMESERIES_H_

#ifndef STATDB_FLIGHT_FLIGHT_RECORDER_H_
#define STATDB_FLIGHT_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "causal/trace_context.h"
#include "common/sync.h"

namespace statdb {

/// statdb::flight — the flight recorder (DESIGN.md §12).
///
/// PR 3's metrics answer "how much, in total"; PR 3's traces answer "where
/// did this one query spend its time". Neither answers the question a
/// crash-matrix failure actually asks: *what was the system doing just
/// before it died?* The flight recorder is the black box for that — a
/// fixed-size ring of small structured events (query end, cache verdicts,
/// maintainer arm/fire, WAL commit, injected fault, I/O retry, recovery
/// step, degraded flip) that costs one relaxed load when disabled and a
/// handful of relaxed stores when enabled, and that can always dump its
/// last-N-events window as JSON — including automatically, once, on the
/// first DATA_LOSS or degraded-mode entry.
///
/// Concurrency design: writers claim a slot with one fetch_add and stamp
/// it with a per-slot sequence marker (odd while the payload is being
/// written, `seq*2+2` once published). Readers copy the payload and accept
/// it only if the marker is identical-and-even before and after the copy —
/// a per-slot seqlock. Every payload field is a relaxed atomic so the
/// scheme is exact under TSan, not merely benign: no locks on the write
/// path, wait-free except for the (unbounded but contention-free) reader
/// retry which Dump sidesteps by skipping torn slots.

/// What happened. Values are stable — they appear in dumped JSON.
enum class FlightEventKind : uint8_t {
  kQueryBegin = 0,      // a = request index in batch (or 0)
  kQueryEnd = 1,        // a = outcome (AnswerSource), b = rows, x = wall ms
  kCacheHit = 2,        // summary database answered fresh
  kCacheMiss = 3,       // summary database had nothing usable
  kStaleServe = 4,      // stale summary served under allow_stale
  kMaintainerArm = 5,   // incremental maintainer constructed
  kMaintainerFire = 6,  // maintainer applied an update delta
  kWalCommit = 7,       // a = lsn, b = pages in record, x = wal ms
  kFaultInjected = 8,   // a = FaultKind, b = page id
  kIoRetry = 9,         // a = attempt #, b = page id, x = backoff ms
  kRecoveryStep = 10,   // a/b step-specific (see recovery.cc)
  kDegraded = 11,       // read-only degraded mode entered
  kDataLoss = 12,       // checksum mismatch / unrecoverable read
  kUpdate = 13,         // a = view version after, b = cells changed
  kRollback = 14,       // a = version rolled back to
  kSessionOpen = 15,    // a = session id, b = pinned commit seq
  kSessionClose = 16,   // a = session id, b = queries served
  kPolicySwitch = 17,   // "view.attr"; a = from strategy, b = to strategy
  kDeltaFlush = 18,     // "view.attr"; a = batch size, b = entries refreshed
};

const char* FlightEventKindName(FlightEventKind kind);

/// One published event, as handed to readers. POD, fixed size.
struct FlightEvent {
  uint64_t seq = 0;    // global order of the event
  double t_ms = 0;     // ms since recorder construction
  FlightEventKind kind = FlightEventKind::kQueryBegin;
  char label[48] = {};  // "view.fn(attr)" etc.; truncated, NUL-terminated
  int64_t a = 0;        // kind-specific payload (see enum comments)
  int64_t b = 0;
  double x = 0;
  /// The causal::TraceContext id of the operation this event belongs to
  /// (DESIGN.md §17), or 0 when no context was live — the join key
  /// against QueryTrace spans, delta-flush records and WAL commits.
  uint64_t trace = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1024;
  static constexpr size_t kLabelWords = 6;  // 48 label bytes as uint64s

  /// `capacity` is rounded up to a power of two (slot math is one mask).
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The hot-path entry point. Disabled: one relaxed load and a branch.
  /// Events are stamped with the calling thread's current trace id —
  /// layers below the TraceContext signature boundary (buffer pool,
  /// devices, WAL) attribute to whoever minted the ambient context.
  void Record(FlightEventKind kind, std::string_view label, int64_t a = 0,
              int64_t b = 0, double x = 0) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    RecordSlow(kind, label, a, b, x, causal::CurrentTraceId());
  }

  /// Explicit-context form (lint rule R8: core/delta/session call sites
  /// must use this one). Stamps `ctx.trace_id` even when called off the
  /// minting thread — the propagated context, not the ambient slot, is
  /// authoritative.
  void Record(const causal::TraceContext& ctx, FlightEventKind kind,
              std::string_view label, int64_t a = 0, int64_t b = 0,
              double x = 0) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    RecordSlow(kind, label, a, b, x, ctx.trace_id);
  }

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Keep 1-in-`n` of the *samplable* kinds (cache verdicts, query
  /// begin/end, update). Rare, diagnosis-critical kinds — faults,
  /// retries, recovery, WAL commits, degraded/DATA_LOSS flips,
  /// maintainer fire, rollback — are never sampled out. n is rounded up
  /// to a power of two; n <= 1 disables sampling.
  void set_sample_every(uint64_t n);
  uint64_t sample_every() const {
    return sample_mask_.load(std::memory_order_relaxed) + 1;
  }

  size_t capacity() const { return capacity_; }
  /// Events accepted into the ring (post-sampling), total ever.
  uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events dropped by sampling, total ever.
  uint64_t sampled_out() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

  /// Copies the currently-published window (oldest surviving → newest).
  /// Slots a writer is mid-stamp on are skipped, not blocked on.
  std::vector<FlightEvent> SnapshotEvents() const;

  /// {"flight": {..., "events": [...]}} over the surviving window.
  /// `reason` tags the dump ("manual", "degraded", "data_loss", ...).
  std::string DumpJson(const std::string& reason = "manual") const;

  /// Arms the automatic black-box dump: the first AutoDumpOnce() after
  /// this writes DumpJson(reason) to `path`. Empty path disarms.
  void set_auto_dump_path(std::string path);
  std::string auto_dump_path() const;

  /// Fires at most once per recorder lifetime (first caller wins; later
  /// calls — and calls with no armed path — are no-ops). Returns true if
  /// this call performed the dump. Safe from any thread.
  bool AutoDumpOnce(const std::string& reason);
  uint64_t auto_dumps() const {
    return auto_dumps_.load(std::memory_order_relaxed);
  }

  /// Drops the recorded window and re-arms the auto dump. Counters keep
  /// their lifetime totals; `head_` keeps climbing so seqs stay unique.
  void Clear();

  double NowMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  // A slot's marker is 0 (never written), odd (writer mid-stamp), or
  // seq*2+2 (payload for `seq` is published). Payload fields are relaxed
  // atomics; the marker's release/acquire pair orders them.
  struct Slot {
    std::atomic<uint64_t> marker{0};
    std::atomic<double> t_ms{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<double> x{0};
    std::atomic<uint64_t> trace{0};
    std::atomic<uint64_t> label[kLabelWords] = {};
  };

  void RecordSlow(FlightEventKind kind, std::string_view label, int64_t a,
                  int64_t b, double x, uint64_t trace);

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::chrono::steady_clock::time_point epoch_;

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> sample_mask_{0};  // keep when (tick & mask) == 0
  std::atomic<uint64_t> sample_tick_{0};
  std::atomic<uint64_t> sampled_out_{0};

  std::atomic<bool> auto_dump_armed_{false};
  std::atomic<bool> auto_dump_fired_{false};
  std::atomic<uint64_t> auto_dumps_{0};
  mutable Mutex auto_dump_mu_;
  std::string auto_dump_path_ STATDB_GUARDED_BY(auto_dump_mu_);
};

}  // namespace statdb

#endif  // STATDB_FLIGHT_FLIGHT_RECORDER_H_

#include "flight/flight_recorder.h"

#include <algorithm>
#include <bit>
#include <fstream>

#include "obs/json.h"

namespace statdb {

namespace {

/// Samplable kinds are the per-query-frequency ones; everything that
/// marks a fault, a durability boundary or a state flip survives any
/// sampling rate — those are exactly the events a post-mortem needs.
bool IsSamplable(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kQueryBegin:
    case FlightEventKind::kQueryEnd:
    case FlightEventKind::kCacheHit:
    case FlightEventKind::kCacheMiss:
    case FlightEventKind::kStaleServe:
    case FlightEventKind::kMaintainerArm:
    case FlightEventKind::kUpdate:
      return true;
    default:
      return false;
  }
}

size_t RoundUpPow2(size_t n) {
  if (n < 2) return 2;
  return std::bit_ceil(n);
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kQueryBegin: return "query_begin";
    case FlightEventKind::kQueryEnd: return "query_end";
    case FlightEventKind::kCacheHit: return "cache_hit";
    case FlightEventKind::kCacheMiss: return "cache_miss";
    case FlightEventKind::kStaleServe: return "stale_serve";
    case FlightEventKind::kMaintainerArm: return "maintainer_arm";
    case FlightEventKind::kMaintainerFire: return "maintainer_fire";
    case FlightEventKind::kWalCommit: return "wal_commit";
    case FlightEventKind::kFaultInjected: return "fault_injected";
    case FlightEventKind::kIoRetry: return "io_retry";
    case FlightEventKind::kRecoveryStep: return "recovery_step";
    case FlightEventKind::kSessionOpen: return "session_open";
    case FlightEventKind::kSessionClose: return "session_close";
    case FlightEventKind::kDegraded: return "degraded";
    case FlightEventKind::kDataLoss: return "data_loss";
    case FlightEventKind::kUpdate: return "update";
    case FlightEventKind::kRollback: return "rollback";
    case FlightEventKind::kPolicySwitch: return "policy_switch";
    case FlightEventKind::kDeltaFlush: return "delta_flush";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)),
      epoch_(std::chrono::steady_clock::now()) {}

void FlightRecorder::set_sample_every(uint64_t n) {
  uint64_t pow2 = n <= 1 ? 1 : std::bit_ceil(n);
  sample_mask_.store(pow2 - 1, std::memory_order_relaxed);
}

void FlightRecorder::RecordSlow(FlightEventKind kind,
                                std::string_view label, int64_t a,
                                int64_t b, double x, uint64_t trace) {
  uint64_t mask = sample_mask_.load(std::memory_order_relaxed);
  if (mask != 0 && IsSamplable(kind)) {
    uint64_t tick =
        sample_tick_.fetch_add(1, std::memory_order_relaxed);
    if ((tick & mask) != 0) {
      sampled_out_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[seq & mask_];
  // Odd marker = "torn"; readers that see it (or see it change across
  // their copy) discard the slot. acq_rel so a reader that observes the
  // final even marker also observes every payload store before it.
  s.marker.store(seq * 2 + 1, std::memory_order_release);

  s.t_ms.store(NowMs(), std::memory_order_relaxed);
  s.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.x.store(x, std::memory_order_relaxed);
  s.trace.store(trace, std::memory_order_relaxed);
  uint64_t words[kLabelWords] = {};
  size_t n = std::min(label.size(), sizeof(words) - 1);  // keep a NUL
  std::memcpy(words, label.data(), n);
  for (size_t i = 0; i < kLabelWords; ++i) {
    s.label[i].store(words[i], std::memory_order_relaxed);
  }

  s.marker.store(seq * 2 + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::SnapshotEvents() const {
  std::vector<FlightEvent> out;
  uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t first = head > capacity_ ? head - capacity_ : 0;
  out.reserve(static_cast<size_t>(head - first));
  for (uint64_t seq = first; seq < head; ++seq) {
    const Slot& s = slots_[seq & mask_];
    uint64_t before = s.marker.load(std::memory_order_acquire);
    if (before != seq * 2 + 2) continue;  // torn or already overwritten
    FlightEvent ev;
    ev.seq = seq;
    ev.t_ms = s.t_ms.load(std::memory_order_relaxed);
    ev.kind = static_cast<FlightEventKind>(
        s.kind.load(std::memory_order_relaxed));
    ev.a = s.a.load(std::memory_order_relaxed);
    ev.b = s.b.load(std::memory_order_relaxed);
    ev.x = s.x.load(std::memory_order_relaxed);
    ev.trace = s.trace.load(std::memory_order_relaxed);
    uint64_t words[kLabelWords];
    for (size_t i = 0; i < kLabelWords; ++i) {
      words[i] = s.label[i].load(std::memory_order_relaxed);
    }
    std::memcpy(ev.label, words, sizeof(ev.label));
    ev.label[sizeof(ev.label) - 1] = '\0';
    uint64_t after = s.marker.load(std::memory_order_acquire);
    if (after != before) continue;  // a writer lapped us mid-copy
    out.push_back(ev);
  }
  return out;
}

std::string FlightRecorder::DumpJson(const std::string& reason) const {
  std::vector<FlightEvent> events = SnapshotEvents();
  std::vector<std::string> rows;
  rows.reserve(events.size());
  for (const FlightEvent& ev : events) {
    rows.push_back(obs::JsonObject()
                       .Int("seq", ev.seq)
                       .Num("t_ms", ev.t_ms)
                       .Str("kind", FlightEventKindName(ev.kind))
                       .Str("label", ev.label)
                       .Raw("a", std::to_string(ev.a))
                       .Raw("b", std::to_string(ev.b))
                       .Num("x", ev.x)
                       .Int("trace", ev.trace)
                       .Build());
  }
  obs::JsonObject flight;
  flight.Str("reason", reason)
      .Bool("enabled", enabled())
      .Int("capacity", capacity_)
      .Int("recorded", recorded())
      .Int("sampled_out", sampled_out())
      .Int("sample_every", sample_every())
      .Int("auto_dumps", auto_dumps())
      .Raw("events", obs::JsonArray(rows));
  return obs::JsonObject().Raw("flight", flight.Build()).Build();
}

void FlightRecorder::set_auto_dump_path(std::string path) {
  MutexLock lock(auto_dump_mu_);
  auto_dump_path_ = std::move(path);
  auto_dump_armed_.store(!auto_dump_path_.empty(),
                         std::memory_order_relaxed);
}

std::string FlightRecorder::auto_dump_path() const {
  MutexLock lock(auto_dump_mu_);
  return auto_dump_path_;
}

bool FlightRecorder::AutoDumpOnce(const std::string& reason) {
  if (!auto_dump_armed_.load(std::memory_order_relaxed)) return false;
  bool expected = false;
  if (!auto_dump_fired_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return false;  // somebody else already shipped the black box
  }
  std::string path = auto_dump_path();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << DumpJson(reason) << "\n";
  auto_dumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FlightRecorder::Clear() {
  // Invalidate every published slot; in-flight writers republish theirs
  // with fresh seqs as head_ keeps climbing.
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].marker.store(0, std::memory_order_release);
  }
  auto_dump_fired_.store(false, std::memory_order_relaxed);
}

}  // namespace statdb

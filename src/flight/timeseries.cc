#include "flight/timeseries.h"

#include <cctype>
#include <cstdio>
#include <vector>

#include "obs/json.h"

namespace statdb {

namespace {

double DeltaOf(const std::map<std::string, double>& prev,
               const std::map<std::string, double>& cur,
               const std::string& key, bool* found) {
  auto p = prev.find(key);
  auto c = cur.find(key);
  if (p == prev.end() || c == cur.end()) {
    *found = false;
    return 0;
  }
  *found = true;
  double d = c->second - p->second;
  return d < 0 ? 0 : d;  // counter reset between points
}

std::string ValuesJson(const std::map<std::string, double>& values) {
  obs::JsonObject obj;
  for (const auto& [key, v] : values) obj.Num(key, v);
  return obj.Build();
}

std::string PointJson(const StatPoint& p) {
  return obs::JsonObject()
      .Num("t_ms", p.t_ms)
      .Int("seq", p.seq)
      .Raw("values", ValuesJson(p.values))
      .Build();
}

std::string PrometheusName(const std::string& key) {
  std::string out = "statdb_";
  for (char c : key) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

}  // namespace

void MetricsTimeseries::Push(StatPoint point) {
  MutexLock lock(mu_);
  points_.push_back(std::move(point));
  if (points_.size() > capacity_) points_.pop_front();
  ++total_pushed_;
}

size_t MetricsTimeseries::size() const {
  MutexLock lock(mu_);
  return points_.size();
}

uint64_t MetricsTimeseries::total_pushed() const {
  MutexLock lock(mu_);
  return total_pushed_;
}

std::string MetricsTimeseries::DumpJson() const {
  MutexLock lock(mu_);
  obs::JsonObject ts;
  ts.Int("capacity", capacity_)
      .Int("count", points_.size())
      .Int("dropped", total_pushed_ > points_.size()
                          ? total_pushed_ - points_.size()
                          : 0);
  if (!points_.empty()) {
    ts.Raw("base", PointJson(points_.front()));
  }
  std::vector<std::string> deltas;
  for (size_t i = 1; i < points_.size(); ++i) {
    const StatPoint& prev = points_[i - 1];
    const StatPoint& cur = points_[i];
    obs::JsonObject delta_values;
    for (const auto& [key, v] : cur.values) {
      auto p = prev.values.find(key);
      double d = p == prev.values.end() ? v : v - p->second;
      if (d < 0) d = 0;  // counter reset between points
      delta_values.Num(key, d);
    }

    // Derived rates over this interval, from the canonical keys.
    obs::JsonObject rates;
    bool have_lookups = false, have_hits = false, have_bytes = false,
         have_wal_bytes = false, have_commits = false;
    double lookups = DeltaOf(prev.values, cur.values, "summary.lookups",
                             &have_lookups);
    double hits =
        DeltaOf(prev.values, cur.values, "summary.hits", &have_hits);
    if (have_lookups && have_hits && lookups > 0) {
      rates.Num("summary_hit_rate", hits / lookups);
    }
    double bytes_read =
        DeltaOf(prev.values, cur.values, "io.bytes_read", &have_bytes);
    double dt_ms = cur.t_ms - prev.t_ms;
    if (have_bytes && dt_ms > 0) {
      rates.Num("scan_mb_per_s",
                (bytes_read / 1e6) / (dt_ms / 1000.0));
    }
    double wal_bytes = DeltaOf(prev.values, cur.values,
                               "wal.bytes_appended", &have_wal_bytes);
    double commits =
        DeltaOf(prev.values, cur.values, "wal.commits", &have_commits);
    if (have_wal_bytes && have_commits && commits > 0) {
      rates.Num("wal_bytes_per_commit", wal_bytes / commits);
    }

    deltas.push_back(obs::JsonObject()
                         .Num("dt_ms", dt_ms)
                         .Int("from_seq", prev.seq)
                         .Int("to_seq", cur.seq)
                         .Raw("delta", delta_values.Build())
                         .Raw("rates", rates.Build())
                         .Build());
  }
  ts.Raw("deltas", obs::JsonArray(deltas));
  return obs::JsonObject().Raw("timeseries", ts.Build()).Build();
}

std::string MetricsTimeseries::ExposeText() const {
  MutexLock lock(mu_);
  std::string out;
  if (points_.empty()) {
    return "# statdb timeseries: no snapshots taken yet\n";
  }
  const StatPoint& latest = points_.back();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", latest.t_ms);
  out += "# statdb metrics snapshot at t_ms=" + std::string(buf) +
         " seq=" + std::to_string(latest.seq) + "\n";
  for (const auto& [key, v] : latest.values) {
    std::string name = PrometheusName(key);
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + buf + "\n";
  }
  return out;
}

void MetricsTimeseries::Reset() {
  MutexLock lock(mu_);
  points_.clear();
  total_pushed_ = 0;
}

}  // namespace statdb

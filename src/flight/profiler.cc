#include "flight/profiler.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/json.h"

namespace statdb {

namespace {

std::string FunctionKey(const std::string& view, const std::string& fn,
                        const std::string& attr) {
  return view + "." + fn + "(" + attr + ")";
}

std::string AttributeKey(const std::string& view,
                         const std::string& attr) {
  return view + "." + attr;
}

}  // namespace

void WorkloadProfiler::NoteQuery(const std::string& view,
                                 const std::string& function,
                                 const std::string& attribute,
                                 QueryOutcome outcome, double wall_ms) {
  MutexLock lock(mu_);
  ++total_queries_;
  FunctionCell& cell = functions_[FunctionKey(view, function, attribute)];
  ++cell.queries;
  cell.total_ms += wall_ms;
  switch (outcome) {
    case QueryOutcome::kComputed: ++cell.computed; break;
    case QueryOutcome::kCacheHit: ++cell.cache_hits; break;
    case QueryOutcome::kStaleServe: ++cell.stale_serves; break;
    case QueryOutcome::kInferred: ++cell.inferred; break;
    case QueryOutcome::kFailed: ++cell.failed; break;
  }
  AttributeRow& row = attributes_[AttributeKey(view, attribute)];
  ++row.accesses;
  row.query_ms += wall_ms;
}

void WorkloadProfiler::NoteUpdate(const std::string& view,
                                  const std::string& attribute,
                                  uint64_t cells) {
  MutexLock lock(mu_);
  ++total_updates_;
  AttributeRow& row = attributes_[AttributeKey(view, attribute)];
  ++row.updates;
  row.cells_updated += cells;
}

WorkloadProfiler::AttributeRow WorkloadProfiler::AttributeStats(
    const std::string& view, const std::string& attribute) const {
  MutexLock lock(mu_);
  auto it = attributes_.find(AttributeKey(view, attribute));
  return it == attributes_.end() ? AttributeRow{} : it->second;
}

uint64_t WorkloadProfiler::total_queries() const {
  MutexLock lock(mu_);
  return total_queries_;
}

uint64_t WorkloadProfiler::total_updates() const {
  MutexLock lock(mu_);
  return total_updates_;
}

const char* WorkloadProfiler::Advice(uint64_t accesses,
                                     uint64_t updates) {
  if (updates == 0) return "cache-only";
  double ratio = double(accesses) / double(updates);
  if (ratio >= 4.0) return "maintain";
  if (ratio < 1.0) return "invalidate";
  return "borderline";
}

std::string WorkloadProfiler::ReportJson() const {
  MutexLock lock(mu_);
  obs::JsonObject functions;
  for (const auto& [key, c] : functions_) {
    functions.Raw(key, obs::JsonObject()
                           .Int("queries", c.queries)
                           .Int("computed", c.computed)
                           .Int("cache_hits", c.cache_hits)
                           .Int("stale_serves", c.stale_serves)
                           .Int("inferred", c.inferred)
                           .Int("failed", c.failed)
                           .Num("total_ms", c.total_ms)
                           .Build());
  }
  obs::JsonObject attributes;
  for (const auto& [key, r] : attributes_) {
    attributes.Raw(key, obs::JsonObject()
                            .Int("accesses", r.accesses)
                            .Int("updates", r.updates)
                            .Int("cells_updated", r.cells_updated)
                            .Num("query_ms", r.query_ms)
                            .Str("advice", Advice(r.accesses, r.updates))
                            .Build());
  }
  obs::JsonObject workload;
  workload.Int("total_queries", total_queries_)
      .Int("total_updates", total_updates_)
      .Raw("functions", functions.Build())
      .Raw("attributes", attributes.Build());
  return obs::JsonObject().Raw("workload", workload.Build()).Build();
}

std::string WorkloadProfiler::ReportText(size_t top_n) const {
  MutexLock lock(mu_);
  std::string out;
  char line[192];

  std::snprintf(line, sizeof(line),
                "statdb top — %llu queries, %llu updates\n",
                static_cast<unsigned long long>(total_queries_),
                static_cast<unsigned long long>(total_updates_));
  out += line;

  out += "\nATTRIBUTES (the §4.3 decision input)\n";
  std::snprintf(line, sizeof(line), "%-28s %8s %8s %10s %9s  %s\n",
                "view.attribute", "reads", "writes", "cells_upd",
                "query_ms", "advice");
  out += line;
  std::vector<std::pair<std::string, AttributeRow>> attrs(
      attributes_.begin(), attributes_.end());
  std::sort(attrs.begin(), attrs.end(), [](const auto& a, const auto& b) {
    uint64_t ta = a.second.accesses + a.second.updates;
    uint64_t tb = b.second.accesses + b.second.updates;
    return ta != tb ? ta > tb : a.first < b.first;
  });
  if (attrs.size() > top_n) attrs.resize(top_n);
  for (const auto& [key, r] : attrs) {
    std::snprintf(line, sizeof(line),
                  "%-28s %8llu %8llu %10llu %9.2f  %s\n", key.c_str(),
                  static_cast<unsigned long long>(r.accesses),
                  static_cast<unsigned long long>(r.updates),
                  static_cast<unsigned long long>(r.cells_updated),
                  r.query_ms, Advice(r.accesses, r.updates));
    out += line;
  }

  out += "\nFUNCTIONS\n";
  std::snprintf(line, sizeof(line), "%-36s %8s %6s %6s %6s %6s %9s\n",
                "view.function(attribute)", "queries", "comp", "hit",
                "stale", "infer", "total_ms");
  out += line;
  std::vector<std::pair<std::string, FunctionCell>> fns(
      functions_.begin(), functions_.end());
  std::sort(fns.begin(), fns.end(), [](const auto& a, const auto& b) {
    return a.second.queries != b.second.queries
               ? a.second.queries > b.second.queries
               : a.first < b.first;
  });
  if (fns.size() > top_n) fns.resize(top_n);
  for (const auto& [key, c] : fns) {
    std::snprintf(line, sizeof(line),
                  "%-36s %8llu %6llu %6llu %6llu %6llu %9.2f\n",
                  key.c_str(),
                  static_cast<unsigned long long>(c.queries),
                  static_cast<unsigned long long>(c.computed),
                  static_cast<unsigned long long>(c.cache_hits),
                  static_cast<unsigned long long>(c.stale_serves),
                  static_cast<unsigned long long>(c.inferred),
                  c.total_ms);
    out += line;
  }
  return out;
}

void WorkloadProfiler::Reset() {
  MutexLock lock(mu_);
  functions_.clear();
  attributes_.clear();
  total_queries_ = 0;
  total_updates_ = 0;
}

}  // namespace statdb

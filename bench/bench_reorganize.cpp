// E14 — Dynamic reorganization (§2.7): "'intelligent' access methods
// that interpret reference patterns to the view and dynamically
// reorganize the storage structures used to maintain the view."
// Claim: clustering the view on its hottest category attributes makes
// those columns compressible (long runs) while leaving every cached
// answer valid.

#include "bench/bench_util.h"
#include "core/dbms.h"
#include "storage/rle.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

double RleRatio(StatisticalDbms* dbms, const std::string& attr) {
  auto col = Unwrap(dbms->GetView("v"))->ReadColumn(attr).value();
  std::vector<std::optional<int64_t>> cells;
  for (const Value& v : col) {
    cells.push_back(v.is_null()
                        ? std::optional<int64_t>()
                        : std::optional<int64_t>(v.ToInt().value()));
  }
  return double(RawColumnBytes(cells.size())) /
         double(RleEncodedBytes(RleEncode(cells)));
}

}  // namespace

int main() {
  Header("E14 bench_reorganize",
         "access-pattern-driven clustering: compressibility before/after,"
         " answers preserved");

  auto storage = MakeInstallation();
  StatisticalDbms dbms(storage.get());
  CheckOk(dbms.LoadRawDataSet("census", MakeCensus(50000)));
  ViewDefinition def;
  def.source = "census";
  CheckOk(dbms.CreateView("v", def, MaintenancePolicy::kIncremental)
              .status());

  // The analyst's session: heavy per-race slicing.
  for (int i = 0; i < 4; ++i) {
    UpdateSpec spec;
    spec.predicate = Eq(Col("RACE"), Lit(int64_t{i}));
    spec.column = "INCOME";
    spec.value = Mul(Col("INCOME"), Lit(1.0005));
    Unwrap(dbms.Update("v", spec));
  }
  Unwrap(dbms.Query("v", "median", "INCOME"));
  Unwrap(dbms.Query("v", "mean", "INCOME"));

  std::string hot = Unwrap(dbms.RecommendClusterAttribute("v"));
  std::printf("access tracker recommends clustering on: %s\n\n",
              hot.c_str());

  double median_before = Unwrap(
      Unwrap(dbms.Query("v", "median", "INCOME")).result.AsScalar());
  std::printf("%12s | %14s %14s\n", "column", "RLE before", "RLE after");
  double before[3] = {RleRatio(&dbms, "RACE"), RleRatio(&dbms, "SEX"),
                      RleRatio(&dbms, "AGE_GROUP")};

  WallTimer t;
  CheckOk(dbms.ReorganizeView("v", {hot, "AGE_GROUP", "SEX"}));
  double reorg_ms = t.ElapsedMs();

  const char* cols[3] = {"RACE", "SEX", "AGE_GROUP"};
  for (int i = 0; i < 3; ++i) {
    std::printf("%12s | %13.1fx %13.1fx\n", cols[i], before[i],
                RleRatio(&dbms, cols[i]));
  }

  auto median_after = Unwrap(dbms.Query("v", "median", "INCOME"));
  std::printf(
      "\nreorganization took %.0f ms (CPU); median(INCOME) %s: %.6g ->"
      " %.6g [%s]\n",
      reorg_ms,
      median_after.result.AsScalar().value() == median_before
          ? "preserved"
          : "CHANGED (BUG)",
      median_before, median_after.result.AsScalar().value(),
      median_after.source == AnswerSource::kCacheHit ? "cache hit"
                                                     : "recomputed");
  std::printf(
      "shape check: the recommended (hottest) category column becomes"
      " orders of magnitude more compressible; cached answers survive"
      " because column multisets are unchanged.\n");
  return 0;
}

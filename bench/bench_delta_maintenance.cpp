// E20: the delta-batching crossover (DESIGN.md §16). One update stream —
// single-row contractions against a two-column table — is priced under
// every maintenance strategy on the deterministic device cost model,
// with durability on so each commit force-writes its dirty pages and
// their WAL images:
//
//   eager        — buffer + flush per update: every commit pays the
//                  summary B-tree's dirty pages again, once per armed
//                  entry page, for every single-row change.
//   batched (B)  — deltas accumulate until the flush threshold B; the
//                  summary pages go dirty once per B updates, so the
//                  maintenance I/O amortizes while the data-page cost
//                  stays identical.
//   lazy         — invalidate on update, recompute at the end: cheapest
//                  writes, but every summary is stale until a query
//                  pays the recompute (the §4.3 fallback).
//
// The data pages touched are identical across phases (same stream, same
// predicates), so the spread between the series is purely maintenance
// I/O. The gated series prices the summary-store device (disk: data
// pages + summary B-tree); the WAL's per-commit protocol cost — one
// commit per update in EVERY arm, by construction — is strategy-
// invariant, so it is reported as its own series instead of diluting
// the maintenance signal. The perf gate (scripts/check_bench_schema.py)
// holds the batch-64 win at >= 3x over eager on the gated series;
// compare_bench.py diffs every simulated series against
// bench/baseline/BENCH_delta_maintenance.json.
//
// argv[1] overrides rows, argv[2] the update count (CI runs the
// committed baseline's scale: 4096 rows, 256 updates).

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dbms.h"
#include "delta/policy.h"
#include "relational/expr.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

constexpr uint64_t kDefaultRows = 4096;
constexpr int kDefaultUpdates = 256;
const size_t kBatchSizes[] = {4, 16, 64, 256};
constexpr size_t kGateBatch = 64;

const char* kScalarFns[] = {"count", "sum",  "mean", "variance",
                            "stddev", "min", "max",  "mode",
                            "distinct"};
// Wide-payload entries: a many-bucket histogram record fills most of a
// B-tree leaf, so each armed histogram puts another summary page in the
// per-commit force set — the maintenance I/O the batching amortizes.
const size_t kHistBuckets[] = {8,  16, 24, 32, 40, 48,
                               56, 64, 72, 80, 88};

// Deterministic synthetic column: no RNG, so the page-touch sequence —
// and with it every simulated series — is identical on every platform.
Table MakeStream(uint64_t rows) {
  Table t(Schema({Attribute::Numeric("ID", DataType::kInt64),
                  Attribute::Numeric("X", DataType::kDouble)}));
  for (uint64_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value::Int(int64_t(i)));
    row.push_back(Value::Real(std::fmod(double(i) * 2654435761.0, 1e5)));
    CheckOk(t.AppendRow(std::move(row)));
  }
  return t;
}

// Arms every summary entry on X (and, for lazy, just seeds the cache).
void QueryAll(StatisticalDbms* db) {
  for (const char* fn : kScalarFns) {
    Unwrap(db->Query("v", fn, "X"));
  }
  for (size_t buckets : kHistBuckets) {
    FunctionParams hp;
    hp.Set("buckets", double(buckets));
    Unwrap(db->Query("v", "histogram", "X", hp));
  }
}

double SimMs(StorageManager* sm) {
  double total = 0;
  for (const char* dev : {"tape", "disk", "wal"}) {
    total += double(Unwrap(sm->GetDevice(dev))->stats().simulated_ms);
  }
  return total;
}

struct Phase {
  std::string label;
  size_t updates_per_flush = 1;  // 1 = eager; 0 = lazy (no maintenance)
  /// Summary-store device (disk: data pages + summary B-tree) — the
  /// gated series. The WAL's per-commit protocol cost is strategy-
  /// invariant (every arm commits once per update), so it is reported
  /// separately rather than diluting the maintenance signal.
  double simulated_io_ms = 0;
  double wal_simulated_ms = 0;
  double total_simulated_ms = 0;
  double wall_ms = 0;
  std::string metrics;
};

Phase RunPhase(const Table& raw, uint64_t rows, int updates,
               const std::string& label,
               delta::MaintenanceStrategy strategy,
               size_t flush_threshold) {
  auto sm = MakeInstallation(/*tape_pool=*/1024, /*disk_pool=*/16384);
  CheckOk(sm->AddDevice("wal", DeviceCostModel::Disk(), 8).status());
  StatisticalDbms db(sm.get());
  CheckOk(db.EnableDurability("wal"));
  CheckOk(db.LoadRawDataSet("stream", raw, "synthetic"));
  ViewDefinition def;
  def.source = "stream";
  Unwrap(db.CreateView("v", def, MaintenancePolicy::kIncremental));
  delta::DeltaConfig cfg;
  cfg.adaptive = false;
  cfg.default_strategy = strategy;
  cfg.flush_threshold = flush_threshold;
  db.set_delta_config(cfg);

  // Warm-up (untimed): arm the maintainers, freeze the histogram edges,
  // and move the working set into the pool so the measured phase prices
  // maintenance writes, not cold reads.
  QueryAll(&db);

  const double sim0 = SimMs(sm.get());
  const double disk0 =
      double(Unwrap(sm->GetDevice("disk"))->stats().simulated_ms);
  const double wal0 =
      double(Unwrap(sm->GetDevice("wal"))->stats().simulated_ms);
  WallTimer timer;
  for (int u = 0; u < updates; ++u) {
    UpdateSpec spec;
    // Sequential row ids: an update stream with locality (the common
    // shape — new measurements arrive in arrival order). The batched arm
    // stays parked on one column page between flushes; the eager arm
    // seeks away to the summary B-tree and back on every commit.
    spec.predicate = Eq(Col("ID"), Lit(int64_t(uint64_t(u) % rows)));
    spec.column = "X";
    // Contraction into [2e4, 6e4] ⊂ [0, 1e5]: the frozen-edge histogram
    // never spills, so no phase ever pays a full-column rebuild.
    spec.value = Add(Mul(Col("X"), Lit(0.4)), Lit(2e4));
    spec.description = "bench contraction";
    Unwrap(db.Update("v", spec));
  }
  // End-state equalization: every phase finishes with fresh summaries,
  // so the lazy arm pays its deferred recompute inside the measurement.
  CheckOk(db.FlushDeltas("v"));
  QueryAll(&db);

  Phase p;
  p.label = label;
  p.total_simulated_ms = SimMs(sm.get()) - sim0;
  p.simulated_io_ms =
      double(Unwrap(sm->GetDevice("disk"))->stats().simulated_ms) - disk0;
  p.wal_simulated_ms =
      double(Unwrap(sm->GetDevice("wal"))->stats().simulated_ms) - wal0;
  p.wall_ms = timer.ElapsedMs();
  p.metrics = db.DumpMetrics();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = kDefaultRows;
  int updates = kDefaultUpdates;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) updates = int(std::strtoul(argv[2], nullptr, 10));
  Header("delta_maintenance",
         "Per-update eager vs delta-batched vs invalidate-lazy "
         "maintenance, priced by the device cost model with durability "
         "on.");
  const size_t entries =
      std::size(kScalarFns) + std::size(kHistBuckets);
  std::printf("rows: %llu, updates: %d, armed entries on X: %zu\n\n",
              (unsigned long long)rows, updates, entries);

  Table raw = MakeStream(rows);

  std::printf("  %-12s %16s %12s %12s %10s\n", "STRATEGY",
              "MAINT_IO_MS", "WAL_MS", "TOTAL_MS", "VS_EAGER");
  auto report = [](const Phase& p, double eager_ms) {
    std::printf("  %-12s %16.0f %12.0f %12.0f %9.2fx\n", p.label.c_str(),
                p.simulated_io_ms, p.wal_simulated_ms, p.total_simulated_ms,
                eager_ms > 0 && p.simulated_io_ms > 0
                    ? eager_ms / p.simulated_io_ms
                    : 0.0);
  };

  Phase eager = RunPhase(raw, rows, updates, "eager",
                         delta::MaintenanceStrategy::kEagerIncremental,
                         /*flush_threshold=*/1);
  eager.updates_per_flush = 1;
  report(eager, eager.simulated_io_ms);

  std::vector<Phase> batched;
  std::string gate_metrics;
  for (size_t b : kBatchSizes) {
    Phase p = RunPhase(raw, rows, updates, "batched-" + std::to_string(b),
                       delta::MaintenanceStrategy::kDeltaBatched, b);
    p.updates_per_flush = b;
    if (b == kGateBatch) gate_metrics = p.metrics;
    report(p, eager.simulated_io_ms);
    batched.push_back(std::move(p));
  }

  Phase lazy = RunPhase(raw, rows, updates, "lazy",
                        delta::MaintenanceStrategy::kInvalidateLazy,
                        /*flush_threshold=*/1);
  lazy.updates_per_flush = 0;
  report(lazy, eager.simulated_io_ms);

  double batched64 = 0;
  std::vector<std::string> series;
  auto series_row = [&](const Phase& p, const std::string& strategy) {
    JsonObject row;
    row.Str("strategy", strategy)
        .Int("updates_per_flush", p.updates_per_flush)
        .Num("simulated_io_ms", p.simulated_io_ms)
        .Num("wal_simulated_ms", p.wal_simulated_ms)
        .Num("total_simulated_ms", p.total_simulated_ms)
        .Num("wall_ms", p.wall_ms)
        .Num("speedup_vs_eager",
             p.simulated_io_ms > 0
                 ? eager.simulated_io_ms / p.simulated_io_ms
                 : 0.0);
    return row.Build();
  };
  series.push_back(series_row(eager, "eager"));
  for (const Phase& p : batched) {
    if (p.updates_per_flush == kGateBatch) batched64 = p.simulated_io_ms;
    series.push_back(series_row(p, "batched"));
  }

  const double speedup64 =
      batched64 > 0 ? eager.simulated_io_ms / batched64 : 0.0;
  std::printf("\nbatch-%zu speedup over eager: %.2fx (gate: >= 3x)\n",
              kGateBatch, speedup64);

  JsonObject doc;
  doc.Str("bench", "delta_maintenance")
      .Int("rows", rows)
      .Int("updates", uint64_t(updates))
      .Int("armed_entries", entries)
      .Int("batch_size", kGateBatch)
      .Num("eager_simulated_io_ms", eager.simulated_io_ms)
      .Num("batched64_simulated_io_ms", batched64)
      .Num("lazy_simulated_io_ms", lazy.simulated_io_ms)
      .Num("lazy_total_simulated_ms", lazy.total_simulated_ms)
      .Num("lazy_wall_ms", lazy.wall_ms)
      .Num("speedup_at_64", speedup64)
      .Raw("series", JsonArray(series))
      .Raw("metrics", gate_metrics);
  WriteBenchJson("delta_maintenance", doc.Build());
  return 0;
}

// Parallel chunked scan/aggregate vs the serial query path (DESIGN.md
// §9). One concrete view of 1M census rows; the headline series answers
// the standard mergeable battery over INCOME either as N serial Query
// calls (one column read per statistic) or as one QueryMany batch whose
// single parallel pass feeds every statistic from merged partial states.
// A second series runs one statistic (variance) at 1/2/4/8 workers.
//
// Emits BENCH_parallel_scan.json with the wall-clock and speedup series
// plus the DumpMetrics() snapshot taken after the timed work, so one
// artifact carries both the wall clocks and the cost-model counters that
// explain them. argv[1] overrides the row count (CI runs a small one).

#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "core/dbms.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

constexpr uint64_t kDefaultRows = 1'000'000;
const char* kAttr = "INCOME";
const std::vector<std::string> kBattery = {
    "count", "sum",  "mean", "variance", "stddev",   "min",
    "max",   "range", "mode", "distinct", "histogram"};

double SimulatedIoMs(StorageManager* sm) {
  SimulatedDevice* disk = Unwrap(sm->GetDevice("disk"));
  return double(disk->stats().simulated_ms);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = kDefaultRows;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  Header("parallel_scan",
         "One page-aligned chunked pass with mergeable partial states vs "
         "the serial one-read-per-statistic path (INCOME).");
  std::printf("rows: %llu\n", (unsigned long long)rows);

  // The disk pool is sized to hold the whole view so both paths measure
  // scan+aggregate work, not eviction churn.
  auto sm = MakeInstallation(/*tape_pool=*/1024, /*disk_pool=*/32768);
  StatisticalDbms dbms(sm.get());
  CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
  ViewDefinition def;
  def.source = "census";
  Unwrap(dbms.CreateView("v", def, MaintenancePolicy::kInvalidate));

  QueryOptions no_cache;
  no_cache.cache_result = false;

  std::vector<QueryRequest> battery;
  for (const std::string& fn : kBattery) battery.push_back({fn, kAttr, {}});

  // Warm the buffer pool (and fault in every INCOME page) once so every
  // timed series sees the same cache state.
  for (const std::string& fn : kBattery) {
    Unwrap(dbms.Query("v", fn, kAttr, {}, no_cache));
  }
  double io_after_warm = SimulatedIoMs(sm.get());

  // Serial baseline: one Query (= one full column read) per statistic.
  double serial_battery_ms;
  {
    WallTimer t;
    for (const std::string& fn : kBattery) {
      Unwrap(dbms.Query("v", fn, kAttr, {}, no_cache));
    }
    serial_battery_ms = t.ElapsedMs();
  }
  double serial_single_ms;
  {
    WallTimer t;
    Unwrap(dbms.Query("v", "variance", kAttr, {}, no_cache));
    serial_single_ms = t.ElapsedMs();
  }

  std::printf("serial battery (%zu stats): %8.2f ms\n", kBattery.size(),
              serial_battery_ms);
  std::printf("serial variance:           %8.2f ms\n\n", serial_single_ms);
  std::printf("%8s %18s %8s %18s %8s\n", "workers", "battery ms", "x",
              "variance ms", "x");

  std::vector<std::string> battery_rows, single_rows;
  for (size_t workers : {1, 2, 4, 8}) {
    WallTimer tb;
    Unwrap(dbms.QueryMany("v", battery, no_cache, workers));
    double battery_ms = tb.ElapsedMs();
    WallTimer ts;
    Unwrap(dbms.QueryParallel("v", "variance", kAttr, {}, no_cache,
                              workers));
    double single_ms = ts.ElapsedMs();
    double bx = serial_battery_ms / battery_ms;
    double sx = serial_single_ms / single_ms;
    std::printf("%8zu %18.2f %7.2fx %18.2f %7.2fx\n", workers, battery_ms,
                bx, single_ms, sx);
    battery_rows.push_back(JsonObject()
                               .Int("workers", workers)
                               .Num("wall_ms", battery_ms)
                               .Num("speedup", bx)
                               .Build());
    single_rows.push_back(JsonObject()
                              .Int("workers", workers)
                              .Num("wall_ms", single_ms)
                              .Num("speedup", sx)
                              .Build());
  }

  WriteBenchJson(
      "parallel_scan",
      JsonObject()
          .Str("bench", "parallel_scan")
          .Int("rows", rows)
          .Str("attribute", kAttr)
          .Int("battery_size", kBattery.size())
          .Num("serial_battery_ms", serial_battery_ms)
          .Num("serial_single_ms", serial_single_ms)
          .Num("simulated_io_ms", SimulatedIoMs(sm.get()) - io_after_warm)
          .Raw("battery", JsonArray(battery_rows))
          .Raw("single", JsonArray(single_rows))
          .Raw("metrics", dbms.DumpMetrics())
          .Build());
  return 0;
}

// E1 — Summary cache vs. repeated computation (§3.1, Fig. 5).
// Claim: caching function results in the Summary Database turns the
// repeated-computation pattern of Fig. 5 into one computation plus
// cheap lookups; the saving grows with column size and repeat count.

#include "bench/bench_util.h"
#include "core/dbms.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E1 bench_summary_cache",
         "cached summary lookups vs recomputing the function per use");

  std::printf("%10s %8s | %14s %14s %9s | %s\n", "rows", "repeats",
              "no-cache ms", "cache ms", "speedup", "hit rate");
  for (uint64_t rows : {10000ull, 100000ull, 400000ull}) {
    for (int repeats : {4, 16, 64}) {
      auto storage = MakeInstallation();
      StatisticalDbms dbms(storage.get());
      CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
      ViewDefinition def;
      def.source = "census";
      CheckOk(dbms.CreateView("v", def, MaintenancePolicy::kIncremental)
                  .status());
      SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));
      QueryOptions no_cache;
      no_cache.cache_result = false;

      // The analyst's session: median, mean, p95 each asked `repeats`
      // times (axis labels, outlier bounds, trimmed-mean bounds...).
      const char* fns[] = {"median", "mean", "quantile"};
      FunctionParams p95;
      p95.Set("p", 0.95);

      disk->ResetStats();
      WallTimer no_cache_timer;
      for (int r = 0; r < repeats; ++r) {
        for (const char* fn : fns) {
          Unwrap(dbms.Query("v", fn, "INCOME",
                            std::string(fn) == "quantile"
                                ? p95
                                : FunctionParams(),
                            no_cache));
        }
      }
      double no_cache_ms =
          disk->stats().simulated_ms + no_cache_timer.ElapsedMs();

      disk->ResetStats();
      Unwrap(dbms.GetSummaryDb("v"))->ResetStats();
      WallTimer cache_timer;
      for (int r = 0; r < repeats; ++r) {
        for (const char* fn : fns) {
          Unwrap(dbms.Query("v", fn, "INCOME",
                            std::string(fn) == "quantile"
                                ? p95
                                : FunctionParams(),
                            {}));
        }
      }
      double cache_ms =
          disk->stats().simulated_ms + cache_timer.ElapsedMs();
      double hit_rate = Unwrap(dbms.GetSummaryDb("v"))->stats().HitRate();

      std::printf("%10llu %8d | %14.1f %14.1f %8.1fx | %.3f\n",
                  (unsigned long long)rows, repeats, no_cache_ms, cache_ms,
                  no_cache_ms / cache_ms, hit_rate);
    }
  }
  std::printf(
      "\nshape check: speedup grows with both rows and repeats; hit rate"
      " -> (repeats-1)/repeats.\n");
  return 0;
}

// E5 — Finite differencing vs. full recomputation (§4.2, Koenig-Paige).
// Claim: sum/count/mean/variance (and min/max away from extrema) can be
// maintained from "the old function value [and] changes made to the
// data, without having to access all of the data" — per-update cost is
// O(1) instead of a full column pass.

#include "bench/bench_util.h"
#include "rules/incremental.h"
#include "stats/descriptive.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E5 bench_incremental",
         "per-update cost: incremental maintainers vs full recompute");

  Rng rng(7);
  std::printf("%10s %10s | %14s %14s %9s | %s\n", "rows", "updates",
              "recompute ms", "incremental ms", "speedup", "rebuilds");
  for (uint64_t rows : {10000ull, 100000ull, 1000000ull}) {
    // Cap total recompute work; the per-update costs are what matter.
    const int updates = rows >= 1000000 ? 200 : 2000;
    std::vector<double> column;
    column.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      column.push_back(rng.Normal(30000, 8000));
    }

    struct Fn {
      const char* name;
      std::unique_ptr<IncrementalMaintainer> m;
    };
    std::vector<Fn> fns;
    fns.push_back({"sum", MakeSumMaintainer()});
    fns.push_back({"mean", MakeMeanMaintainer()});
    fns.push_back({"variance", MakeVarianceMaintainer()});
    fns.push_back({"min", MakeMinMaintainer()});
    fns.push_back({"max", MakeMaxMaintainer()});
    for (Fn& fn : fns) {
      CheckOk(fn.m->Initialize(column).status());
    }

    // Pre-generate one update stream used by both strategies.
    std::vector<std::pair<size_t, double>> stream;
    for (int u = 0; u < updates; ++u) {
      stream.emplace_back(size_t(rng.UniformInt(0, int64_t(rows) - 1)),
                          rng.Normal(30000, 8000));
    }

    // Full recomputation: every update reruns every function.
    std::vector<double> recompute_col = column;
    WallTimer recompute_timer;
    double sink = 0;
    for (const auto& [idx, fresh] : stream) {
      recompute_col[idx] = fresh;
      DescriptiveStats s = ComputeDescriptive(recompute_col);
      sink += s.sum + s.mean + s.Variance() + s.min + s.max;
    }
    double recompute_ms = recompute_timer.ElapsedMs();

    // Incremental: each update folds one delta into each maintainer.
    std::vector<double> inc_col = column;
    uint64_t rebuilds = 0;
    WallTimer inc_timer;
    for (const auto& [idx, fresh] : stream) {
      CellDelta delta = CellDelta::Change(inc_col[idx], fresh);
      inc_col[idx] = fresh;
      for (Fn& fn : fns) {
        auto r = fn.m->Apply(delta);
        if (!r.ok()) {
          CheckOk(fn.m->Initialize(inc_col).status());
          ++rebuilds;
        }
      }
    }
    double inc_ms = inc_timer.ElapsedMs();

    // Equivalence spot check.
    DescriptiveStats truth = ComputeDescriptive(inc_col);
    double inc_mean =
        Unwrap(Unwrap(fns[1].m->Current()).AsScalar());
    if (std::abs(inc_mean - truth.mean) > 1e-6) {
      std::fprintf(stderr, "DIVERGED: %f vs %f\n", inc_mean, truth.mean);
      return 1;
    }

    std::printf("%10llu %10d | %14.1f %14.2f %8.0fx | %llu\n",
                (unsigned long long)rows, updates, recompute_ms, inc_ms,
                recompute_ms / inc_ms, (unsigned long long)rebuilds);
    (void)sink;
  }
  std::printf(
      "\nshape check: recompute cost grows linearly with rows; incremental"
      " cost is flat, so the speedup grows ~linearly in column size.\n");
  return 0;
}

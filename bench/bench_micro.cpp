// Google-benchmark microbenchmarks for the hot paths underneath the
// experiment harnesses: statistics kernels, incremental maintainers,
// B+-tree operations, column scans and RLE.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "rules/incremental.h"
#include "stats/descriptive.h"
#include "stats/order.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/column_file.h"
#include "storage/rle.h"

namespace statdb {
namespace {

std::vector<double> RandomColumn(int64_t n, uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (int64_t i = 0; i < n; ++i) out.push_back(rng.Normal(0, 1));
  return out;
}

void BM_Descriptive(benchmark::State& state) {
  std::vector<double> data = RandomColumn(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeDescriptive(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Descriptive)->Range(1 << 10, 1 << 20);

void BM_MedianFullSort(benchmark::State& state) {
  std::vector<double> data = RandomColumn(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Median(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MedianFullSort)->Range(1 << 10, 1 << 20);

void BM_MedianWindowApply(benchmark::State& state) {
  std::vector<double> data = RandomColumn(state.range(0));
  auto m = MakeMedianWindowMaintainer(100);
  if (!m->Initialize(data).ok()) state.SkipWithError("init failed");
  Rng rng(5);
  size_t idx = 0;
  for (auto _ : state) {
    double fresh = rng.Normal(0, 1);
    auto r = m->Apply(CellDelta::Change(data[idx], fresh));
    data[idx] = fresh;
    if (!r.ok()) {
      (void)m->Initialize(data);
    }
    idx = (idx + 1) % data.size();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MedianWindowApply)->Range(1 << 12, 1 << 18);

void BM_MomentMaintainerApply(benchmark::State& state) {
  std::vector<double> data = RandomColumn(1 << 16);
  auto m = MakeVarianceMaintainer();
  if (!m->Initialize(data).ok()) state.SkipWithError("init failed");
  Rng rng(5);
  size_t idx = 0;
  for (auto _ : state) {
    double fresh = rng.Normal(0, 1);
    benchmark::DoNotOptimize(
        m->Apply(CellDelta::Change(data[idx], fresh)));
    data[idx] = fresh;
    idx = (idx + 1) % data.size();
  }
}
BENCHMARK(BM_MomentMaintainerApply);

void BM_BTreePut(benchmark::State& state) {
  SimulatedDevice dev("d", DeviceCostModel::Memory());
  BufferPool pool(&dev, 1 << 16);
  auto tree = BPlusTree::Create(&pool);
  if (!tree.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  int64_t i = 0;
  for (auto _ : state) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%012lld", (long long)i++);
    benchmark::DoNotOptimize((*tree)->Put(key, "value"));
  }
}
BENCHMARK(BM_BTreePut);

void BM_BTreeGet(benchmark::State& state) {
  SimulatedDevice dev("d", DeviceCostModel::Memory());
  BufferPool pool(&dev, 1 << 16);
  auto tree = BPlusTree::Create(&pool);
  if (!tree.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%012lld", (long long)i);
    (void)(*tree)->Put(key, "value");
  }
  int64_t i = 0;
  for (auto _ : state) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%012lld", (long long)(i++ % n));
    benchmark::DoNotOptimize((*tree)->Get(key));
  }
}
BENCHMARK(BM_BTreeGet)->Range(1 << 10, 1 << 16);

void BM_ColumnScan(benchmark::State& state) {
  SimulatedDevice dev("d", DeviceCostModel::Memory());
  BufferPool pool(&dev, 1 << 16);
  ColumnFile col(&pool);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    (void)col.Append(i);
  }
  for (auto _ : state) {
    int64_t sum = 0;
    (void)col.Scan([&sum](uint64_t, std::optional<int64_t> v) {
      if (v.has_value()) sum += *v;
      return Status::OK();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColumnScan)->Range(1 << 12, 1 << 18);

void BM_RleEncodeDecode(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::optional<int64_t>> cells;
  for (int64_t i = 0; i < state.range(0); ++i) {
    cells.push_back(rng.Zipf(4, 1.0));
  }
  std::sort(cells.begin(), cells.end());
  for (auto _ : state) {
    auto runs = RleEncode(cells);
    benchmark::DoNotOptimize(RleDecode(runs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RleEncodeDecode)->Range(1 << 12, 1 << 18);

}  // namespace
}  // namespace statdb

BENCHMARK_MAIN();

#ifndef STATDB_BENCH_BENCH_UTIL_H_
#define STATDB_BENCH_BENCH_UTIL_H_

// Shared plumbing for the experiment harnesses. Each bench binary
// regenerates one experiment from DESIGN.md §4 and prints a table of
// the series EXPERIMENTS.md records.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/datagen.h"
#include "storage/storage_manager.h"

namespace statdb {
namespace bench {

template <typename T>
T Unwrap(Result<T> r) {
  if (!r.ok()) {
    std::cerr << "BENCH FATAL: " << r.status().ToString() << std::endl;
    std::exit(1);
  }
  return std::move(r).value();
}

inline void CheckOk(const Status& s) {
  if (!s.ok()) {
    std::cerr << "BENCH FATAL: " << s.ToString() << std::endl;
    std::exit(1);
  }
}

/// Wall-clock stopwatch (milliseconds).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The canonical tape+disk installation used by the experiments.
inline std::unique_ptr<StorageManager> MakeInstallation(
    size_t tape_pool = 1024, size_t disk_pool = 16384) {
  auto sm = std::make_unique<StorageManager>();
  CheckOk(sm->AddDevice("tape", DeviceCostModel::Tape(), tape_pool)
              .status());
  CheckOk(sm->AddDevice("disk", DeviceCostModel::Disk(), disk_pool)
              .status());
  return sm;
}

inline Table MakeCensus(uint64_t rows, uint64_t seed = 42,
                        bool sorted = false) {
  CensusOptions opts;
  opts.rows = rows;
  opts.sorted_by_categories = sorted;
  Rng rng(seed);
  return Unwrap(GenerateCensusMicrodata(opts, &rng));
}

inline void Header(const std::string& id, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

/// Tiny machine-readable results emitter: builds one flat JSON object
/// field by field. Values print with enough digits to round-trip.
class JsonObject {
 public:
  JsonObject& Num(const std::string& key, double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    return Raw(key, os.str());
  }
  JsonObject& Int(const std::string& key, uint64_t v) {
    return Raw(key, std::to_string(v));
  }
  JsonObject& Str(const std::string& key, const std::string& v) {
    return Raw(key, "\"" + v + "\"");
  }
  /// `raw` is already-serialized JSON (a nested object or array).
  JsonObject& Raw(const std::string& key, const std::string& raw) {
    fields_.push_back("\"" + key + "\": " + raw);
    return *this;
  }
  std::string Build() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      out += (i > 0 ? ", " : "") + fields_[i];
    }
    return out + "}";
  }

 private:
  std::vector<std::string> fields_;
};

inline std::string JsonArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    out += (i > 0 ? ", " : "") + items[i];
  }
  return out + "]";
}

/// Writes `object` to BENCH_<name>.json in the working directory, so CI
/// and scripts can scrape bench results without parsing the table.
inline void WriteBenchJson(const std::string& name,
                           const std::string& object) {
  std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  out << object << "\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace bench
}  // namespace statdb

#endif  // STATDB_BENCH_BENCH_UTIL_H_

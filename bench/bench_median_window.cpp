// E6 — The §4.2 median histogram-window technique.
// Claims: (a) pointer slides absorb most updates at O(log W) cost;
// (b) when the pointer runs off the window, regeneration needs only a
// single pass (the 101-bucket argument); (c) bigger windows trade cache
// space for fewer regenerations.

#include <algorithm>

#include "bench/bench_util.h"
#include "rules/incremental.h"
#include "stats/order.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E6 bench_median_window",
         "window size vs slides / single-pass regenerations / full sorts,"
         " against the sort-every-time baseline");

  const uint64_t rows = 200000;
  const int updates = 5000;

  // Baseline: re-sorting per batch of updates.
  {
    Rng rng(3);
    std::vector<double> column;
    for (uint64_t i = 0; i < rows; ++i) {
      column.push_back(rng.Normal(30000, 8000));
    }
    WallTimer t;
    double sink = 0;
    for (int u = 0; u < 50; ++u) {  // 50 full medians stand in for 5000
      column[size_t(rng.UniformInt(0, int64_t(rows) - 1))] =
          rng.Normal(30000, 8000);
      sink += Unwrap(Median(column));
    }
    std::printf("baseline full median: %.2f ms/update (extrapolated to"
                " %d updates: %.0f ms)\n\n",
                t.ElapsedMs() / 50.0, updates,
                t.ElapsedMs() / 50.0 * updates);
    (void)sink;
  }

  std::printf("%8s | %9s %12s %12s %10s | %12s\n", "window", "slides",
              "single-pass", "full sorts", "maint ms", "final ok?");
  for (size_t window : {10ull, 50ull, 100ull, 500ull, 1000ull}) {
    Rng rng(3);
    std::vector<double> column;
    for (uint64_t i = 0; i < rows; ++i) {
      column.push_back(rng.Normal(30000, 8000));
    }
    auto m = MakeMedianWindowMaintainer(window);
    CheckOk(m->Initialize(column).status());
    uint64_t base_rebuilds = m->stats().rebuilds;

    WallTimer t;
    for (int u = 0; u < updates; ++u) {
      size_t idx = size_t(rng.UniformInt(0, int64_t(rows) - 1));
      // Drifting workload: half the updates push values upward, so the
      // median moves and the pointer must follow.
      double fresh = rng.Bernoulli(0.5)
                         ? rng.Normal(30000 + u * 4.0, 8000)
                         : rng.Normal(30000, 8000);
      CellDelta delta = CellDelta::Change(column[idx], fresh);
      column[idx] = fresh;
      auto r = m->Apply(delta);
      if (!r.ok()) {
        CheckOk(m->Initialize(column).status());
      }
    }
    double maint_ms = t.ElapsedMs();
    uint64_t rebuilds = m->stats().rebuilds - base_rebuilds;
    uint64_t single_pass = m->stats().single_pass_rebuilds;
    bool final_ok =
        std::abs(Unwrap(Unwrap(m->Current()).AsScalar()) -
                 Unwrap(Median(column))) < 1e-9;

    std::printf("%8zu | %9llu %12llu %12llu %10.1f | %12s\n", window,
                (unsigned long long)m->stats().window_slides,
                (unsigned long long)single_pass,
                (unsigned long long)(rebuilds - single_pass), maint_ms,
                final_ok ? "exact" : "WRONG");
  }
  std::printf(
      "\nshape check: regenerations fall as the window grows; nearly all"
      " regenerations take the single-pass path; maintenance beats the"
      " sort-per-update baseline by orders of magnitude.\n");
  return 0;
}

// Causal-tracing overhead on the hot query path (DESIGN.md §17).
//
// PR 10 threads a TraceContext through every entry point: a mint (one
// relaxed fetch_add) plus a thread_local install/restore per operation,
// and a trace stamp resolved only inside the flight recorder's slow
// path. The production default is tracing machinery present but every
// consumer off (flight disabled, no sink, slow log disabled) — this
// bench prices exactly that default against a hypothetical tracing-free
// build, then shows the fully-lit configuration for contrast.
//
// Three phases, interleaved round-robin so clock drift spreads evenly:
//   off    flight disabled, no sink, slow log off — the gated default.
//          The minting/install cost is *in* this phase; there is no way
//          to run the binary without it, which is the point: the gate
//          asserts the whole leg is noise.
//   full   flight enabled + slow log capturing at threshold 0 (every
//          operation retained + flight-join on capture)
//   export the full configuration plus a Chrome-trace export per rep
//          (prices the offline renderer, not the hot path)
//
// The headline is overhead_ctx_pct: the context machinery's directly
// measured cost (a mint + thread_local install/restore microbench),
// priced as a percentage of one tracing-off query's wall time. It is
// checked as an ABSOLUTE cap (<= 2%) by compare_bench.py — phase-vs-
// phase wall comparison across runs is noise-dominated (the flight
// bench's "on" phase swings ~20% on shared machines), but "the context
// leg is a vanishing fraction of any real query" is a claim each run
// can prove about itself, no baseline required. Per-phase simulated I/O
// must stay identical: observation must not change the physical plan.

#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "causal/trace_context.h"
#include "core/dbms.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

constexpr uint64_t kDefaultRows = 500'000;
constexpr int kReps = 10;
constexpr size_t kWorkers = 4;
const char* kAttr = "INCOME";
const std::vector<std::string> kBattery = {
    "count", "sum",  "mean", "variance", "stddev",   "min",
    "max",   "range", "mode", "distinct", "histogram"};

double SimulatedIoMs(StorageManager* sm) {
  SimulatedDevice* disk = Unwrap(sm->GetDevice("disk"));
  return double(disk->stats().simulated_ms);
}

struct Phase {
  const char* name;
  bool flight;
  bool slow_log;
  bool export_trace;
  double total_ms = 0;
  double min_ms = 0;
  double io_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = kDefaultRows;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  Header("causal_overhead",
         "Price of causal tracing on the QueryMany battery: everything "
         "off (the production default) vs slow-log capture vs capture "
         "plus Chrome-trace export.");
  std::printf("rows: %llu, reps/phase: %d, workers: %zu\n",
              (unsigned long long)rows, kReps, kWorkers);

  auto sm = MakeInstallation(/*tape_pool=*/1024, /*disk_pool=*/32768);
  StatisticalDbms dbms(sm.get());
  CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
  ViewDefinition def;
  def.source = "census";
  Unwrap(dbms.CreateView("v", def, MaintenancePolicy::kInvalidate));

  QueryOptions no_cache;
  no_cache.cache_result = false;

  std::vector<QueryRequest> battery;
  for (const std::string& fn : kBattery) battery.push_back({fn, kAttr, {}});

  // Warm the pool once so every phase scans resident pages.
  Unwrap(dbms.QueryMany("v", battery, no_cache, kWorkers));

  Phase phases[] = {
      {"off", false, false, false},
      {"full", true, true, false},
      {"export", true, true, true},
  };

  dbms.slow_query_log().set_threshold_ms(0.0);

  for (int rep = 0; rep < kReps; ++rep) {
    for (Phase& p : phases) {
      dbms.flight().set_enabled(p.flight);
      dbms.slow_query_log().set_enabled(p.slow_log);
      double io_before = SimulatedIoMs(sm.get());
      WallTimer t;
      Unwrap(dbms.QueryMany("v", battery, no_cache, kWorkers));
      if (p.export_trace) {
        // The renderer reads snapshots only; DoNotOptimize-by-use via
        // the size (the string is dropped).
        std::string doc = dbms.DumpChromeTrace();
        if (doc.empty()) std::abort();
      }
      double ms = t.ElapsedMs();
      p.total_ms += ms;
      p.min_ms = (rep == 0 || ms < p.min_ms) ? ms : p.min_ms;
      p.io_ms += SimulatedIoMs(sm.get()) - io_before;
    }
  }
  dbms.flight().set_enabled(true);
  dbms.slow_query_log().set_enabled(false);

  const double off_ms = phases[0].min_ms;
  std::printf("\n%10s %12s %12s %14s %12s\n", "phase", "min ms",
              "total ms", "sim io ms", "overhead");
  std::vector<std::string> phase_rows;
  for (const Phase& p : phases) {
    double overhead_pct = off_ms > 0 ? (p.min_ms / off_ms - 1.0) * 100.0
                                     : 0.0;
    std::printf("%10s %12.2f %12.2f %14.2f %11.2f%%\n", p.name, p.min_ms,
                p.total_ms, p.io_ms, overhead_pct);
    phase_rows.push_back(JsonObject()
                             .Str("phase", p.name)
                             .Num("wall_ms", p.min_ms)
                             .Num("total_ms", p.total_ms)
                             .Num("simulated_io_ms", p.io_ms)
                             .Num("overhead_pct", overhead_pct)
                             .Build());
  }

  // The gated number. Every entry point pays exactly one mint plus one
  // thread_local install/restore whether or not anything consumes the
  // context — the cost the off phase cannot shed. Measure it head-on,
  // then price it against one query's tracing-off wall time (the
  // battery floor divided by its size; conservative, since the whole
  // battery shares a single mint). compare_bench.py caps this at an
  // absolute 2%.
  constexpr int kCtxIters = 1'000'000;
  WallTimer ctx_t;
  for (int i = 0; i < kCtxIters; ++i) {
    causal::ScopedTraceContext scope(causal::Mint());
    if (!scope.ctx().valid()) std::abort();  // also defeats dead-code elim
  }
  const double ctx_ns = ctx_t.ElapsedMs() * 1e6 / kCtxIters;
  const double off_ns_per_query =
      off_ms * 1e6 / double(kBattery.size());
  const double overhead_ctx_pct =
      off_ns_per_query > 0 ? ctx_ns / off_ns_per_query * 100.0 : 0.0;

  const double off_ms_per_100k =
      rows > 0 ? off_ms / (double(rows) / 100'000.0) : 0.0;
  std::printf("\noff-phase floor: %.2f ms (%.3f ms per 100k rows)\n",
              off_ms, off_ms_per_100k);
  std::printf("context machinery: %.1f ns per mint+install "
              "(%.4f%% of one tracing-off query)\n",
              ctx_ns, overhead_ctx_pct);
  std::printf("slow log captured %llu entries (%llu dropped)\n",
              (unsigned long long)dbms.slow_query_log().captured(),
              (unsigned long long)dbms.slow_query_log().dropped());

  WriteBenchJson(
      "causal_overhead",
      JsonObject()
          .Str("bench", "causal_overhead")
          .Int("rows", rows)
          .Int("reps", kReps)
          .Int("workers", kWorkers)
          .Int("battery_size", kBattery.size())
          .Num("off_ms", phases[0].min_ms)
          .Num("full_ms", phases[1].min_ms)
          .Num("export_ms", phases[2].min_ms)
          .Num("off_ms_per_100k_rows", off_ms_per_100k)
          .Num("ctx_ns_per_op", ctx_ns)
          .Num("overhead_ctx_pct", overhead_ctx_pct)
          .Num("overhead_full_pct",
               off_ms > 0 ? (phases[1].min_ms / off_ms - 1.0) * 100.0 : 0)
          .Num("overhead_export_pct",
               off_ms > 0 ? (phases[2].min_ms / off_ms - 1.0) * 100.0 : 0)
          .Num("simulated_io_ms", phases[0].io_ms)
          .Int("slow_entries_captured", dbms.slow_query_log().captured())
          .Int("slow_entries_dropped", dbms.slow_query_log().dropped())
          .Raw("phases", JsonArray(phase_rows))
          .Build());
  return 0;
}

// E7 — Maintenance strategies under mixed workloads (§4.2 vs §4.3).
// Claim: invalidate-lazily is the cheap fallback when queries are rare;
// incremental maintenance wins as the query fraction grows; eager
// recomputation only pays when every update is followed by queries.

#include "bench/bench_util.h"
#include "core/dbms.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

double RunSession(MaintenancePolicy policy, double query_fraction,
                  uint64_t rows, uint64_t* full_computations) {
  auto storage = MakeInstallation();
  StatisticalDbms dbms(storage.get());
  CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
  ViewDefinition def;
  def.source = "census";
  CheckOk(dbms.CreateView("v", def, policy).status());
  // Warm the cache with the working set.
  for (const char* fn : {"mean", "variance", "median", "min", "max"}) {
    Unwrap(dbms.Query("v", fn, "INCOME"));
  }
  SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));
  disk->ResetStats();
  WallTimer timer;

  Rng rng(17);
  uint64_t computed_before =
      Unwrap(dbms.GetTrafficStats("v"))->computed;
  const int ops = 200;
  for (int i = 0; i < ops; ++i) {
    if (rng.Bernoulli(query_fraction)) {
      const char* fns[] = {"mean", "variance", "median", "min", "max"};
      Unwrap(dbms.Query("v", fns[rng.UniformInt(0, 4)], "INCOME"));
    } else {
      UpdateSpec spec;
      int64_t age = rng.UniformInt(18, 80);
      spec.predicate = Eq(Col("AGE"), Lit(age));
      spec.column = "INCOME";
      spec.value = Mul(Col("INCOME"), Lit(1.01));
      Unwrap(dbms.Update("v", spec));
    }
  }
  *full_computations =
      Unwrap(dbms.GetTrafficStats("v"))->computed - computed_before;
  return disk->stats().simulated_ms + timer.ElapsedMs();
}

}  // namespace

int main() {
  Header("E7 bench_maintenance_strategies",
         "incremental vs invalidate-lazily vs eager across query mixes");

  const uint64_t rows = 20000;
  std::printf("%8s | %18s %18s %18s\n", "query%",
              "incremental ms(#fc)", "invalidate ms(#fc)",
              "eager ms(#fc)");
  for (double qf : {0.05, 0.25, 0.50, 0.75, 0.95}) {
    double ms[3];
    uint64_t fc[3];
    MaintenancePolicy policies[3] = {MaintenancePolicy::kIncremental,
                                     MaintenancePolicy::kInvalidate,
                                     MaintenancePolicy::kEager};
    for (int p = 0; p < 3; ++p) {
      ms[p] = RunSession(policies[p], qf, rows, &fc[p]);
    }
    std::printf("%7.0f%% | %12.0f(%4llu) %12.0f(%4llu) %12.0f(%4llu)\n",
                qf * 100, ms[0], (unsigned long long)fc[0], ms[1],
                (unsigned long long)fc[1], ms[2],
                (unsigned long long)fc[2]);
  }
  std::printf(
      "\nshape check: invalidate does full computations proportional to"
      " queries-after-updates; incremental does almost none; eager's cost"
      " is paid even when nobody queries.\n");
  return 0;
}

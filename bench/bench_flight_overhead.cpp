// Flight-recorder overhead on the hot query path (DESIGN.md §12).
//
// The recorder's contract is "one relaxed load and a branch when
// disabled, a handful of relaxed stores when enabled" — cheap enough to
// leave on in production. This bench prices that contract on the same
// workload bench_parallel_scan times: the mergeable battery answered by
// QueryMany at 4 workers, pool pre-warmed, caching off, so every rep does
// the same scan+aggregate work and the only variable is the recorder.
//
// Three phases, interleaved round-robin so clock drift and thermal state
// spread evenly instead of biasing one phase:
//   off      recorder disabled (the default-production victim)
//   on       recorder enabled, no sampling (every event lands)
//   sampled  enabled with 1-in-16 sampling of the chatty kinds
//
// The headline per-phase number is the MIN across reps: the workload is
// bit-identical every rep, so the minimum is the floor the recorder can
// actually be blamed for, while sums/means on a shared machine mostly
// measure scheduler jitter (which dwarfs a few hundred relaxed stores).
//
// Emits BENCH_flight_overhead.json with per-phase wall clocks, the
// overhead percentages the perf gate checks (target: <= 2% enabled,
// ~0% disabled), and the per-phase simulated I/O — which must be
// identical across phases, since observation must not change the
// physical plan. argv[1] overrides the row count (CI runs a small one).

#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "core/dbms.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

constexpr uint64_t kDefaultRows = 500'000;
constexpr int kReps = 10;
constexpr size_t kWorkers = 4;
const char* kAttr = "INCOME";
const std::vector<std::string> kBattery = {
    "count", "sum",  "mean", "variance", "stddev",   "min",
    "max",   "range", "mode", "distinct", "histogram"};

double SimulatedIoMs(StorageManager* sm) {
  SimulatedDevice* disk = Unwrap(sm->GetDevice("disk"));
  return double(disk->stats().simulated_ms);
}

struct Phase {
  const char* name;
  bool enabled;
  uint64_t sample_every;
  double total_ms = 0;
  double min_ms = 0;
  double io_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = kDefaultRows;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  Header("flight_overhead",
         "Price of the flight recorder on the QueryMany battery: "
         "disabled vs enabled vs 1-in-16 sampled.");
  std::printf("rows: %llu, reps/phase: %d, workers: %zu\n",
              (unsigned long long)rows, kReps, kWorkers);

  auto sm = MakeInstallation(/*tape_pool=*/1024, /*disk_pool=*/32768);
  StatisticalDbms dbms(sm.get());
  CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
  ViewDefinition def;
  def.source = "census";
  Unwrap(dbms.CreateView("v", def, MaintenancePolicy::kInvalidate));

  QueryOptions no_cache;
  no_cache.cache_result = false;

  std::vector<QueryRequest> battery;
  for (const std::string& fn : kBattery) battery.push_back({fn, kAttr, {}});

  // Warm the pool once so every phase scans resident pages.
  Unwrap(dbms.QueryMany("v", battery, no_cache, kWorkers));

  Phase phases[] = {
      {"off", false, 1},
      {"on", true, 1},
      {"sampled", true, 16},
  };

  for (int rep = 0; rep < kReps; ++rep) {
    for (Phase& p : phases) {
      dbms.flight().set_enabled(p.enabled);
      dbms.flight().set_sample_every(p.sample_every);
      double io_before = SimulatedIoMs(sm.get());
      WallTimer t;
      Unwrap(dbms.QueryMany("v", battery, no_cache, kWorkers));
      double ms = t.ElapsedMs();
      p.total_ms += ms;
      p.min_ms = (rep == 0 || ms < p.min_ms) ? ms : p.min_ms;
      p.io_ms += SimulatedIoMs(sm.get()) - io_before;
    }
  }
  dbms.flight().set_enabled(true);
  dbms.flight().set_sample_every(1);

  const double off_ms = phases[0].min_ms;
  std::printf("\n%10s %12s %12s %14s %12s\n", "phase", "min ms",
              "total ms", "sim io ms", "overhead");
  std::vector<std::string> phase_rows;
  for (const Phase& p : phases) {
    double overhead_pct = off_ms > 0 ? (p.min_ms / off_ms - 1.0) * 100.0
                                     : 0.0;
    std::printf("%10s %12.2f %12.2f %14.2f %11.2f%%\n", p.name, p.min_ms,
                p.total_ms, p.io_ms, overhead_pct);
    phase_rows.push_back(JsonObject()
                             .Str("phase", p.name)
                             .Num("wall_ms", p.min_ms)
                             .Num("total_ms", p.total_ms)
                             .Num("simulated_io_ms", p.io_ms)
                             .Num("overhead_pct", overhead_pct)
                             .Build());
  }
  std::printf("\nrecorded: %llu events, sampled out: %llu\n",
              (unsigned long long)dbms.flight().recorded(),
              (unsigned long long)dbms.flight().sampled_out());

  WriteBenchJson(
      "flight_overhead",
      JsonObject()
          .Str("bench", "flight_overhead")
          .Int("rows", rows)
          .Int("reps", kReps)
          .Int("workers", kWorkers)
          .Int("battery_size", kBattery.size())
          .Num("off_ms", phases[0].min_ms)
          .Num("on_ms", phases[1].min_ms)
          .Num("sampled_ms", phases[2].min_ms)
          .Num("overhead_on_pct",
               off_ms > 0 ? (phases[1].min_ms / off_ms - 1.0) * 100.0 : 0)
          .Num("overhead_sampled_pct",
               off_ms > 0 ? (phases[2].min_ms / off_ms - 1.0) * 100.0 : 0)
          .Num("simulated_io_ms", phases[0].io_ms)
          .Int("events_recorded", dbms.flight().recorded())
          .Int("events_sampled_out", dbms.flight().sampled_out())
          .Raw("phases", JsonArray(phase_rows))
          .Build());
  return 0;
}

// E11 — Database-Abstract inference (Rowe, §5.1).
// Claim: inference rules over already-cached values answer additional
// queries without touching the data, raising the effective hit rate of
// the Summary Database.

#include "bench/bench_util.h"
#include "core/dbms.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E11 bench_inference",
         "cache-only vs cache+inference: served-without-data fraction");

  const uint64_t rows = 100000;
  // The analyst warms a minimal working set, then issues a mixed stream.
  const char* warm[] = {"sum", "count", "variance", "min", "max",
                        "quartiles", "histogram"};
  const char* stream[] = {"mean",   "stddev", "range",  "median",
                          "sum",    "count",  "mean",   "stddev",
                          "median", "range",  "mean",   "count"};

  std::printf("%18s | %10s %10s %10s | %12s\n", "mode", "cache", "inferred",
              "computed", "disk ms");
  for (bool use_inference : {false, true}) {
    auto storage = MakeInstallation(2048, 131072);
    StatisticalDbms dbms(storage.get());
    CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
    ViewDefinition def;
    def.source = "census";
    CheckOk(
        dbms.CreateView("v", def, MaintenancePolicy::kIncremental)
            .status());
    for (const char* fn : warm) {
      Unwrap(dbms.Query("v", fn, "INCOME"));
    }
    SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));
    disk->ResetStats();

    QueryOptions opts;
    opts.allow_inference = use_inference;
    opts.allow_estimates = false;
    opts.cache_result = false;  // isolate inference from later caching
    uint64_t hits = 0, inferred = 0, computed = 0;
    for (const char* fn : stream) {
      QueryAnswer a = Unwrap(dbms.Query("v", fn, "INCOME", {}, opts));
      switch (a.source) {
        case AnswerSource::kCacheHit:
          ++hits;
          break;
        case AnswerSource::kInferred:
          ++inferred;
          break;
        default:
          ++computed;
      }
    }
    std::printf("%18s | %10llu %10llu %10llu | %12.1f\n",
                use_inference ? "cache+inference" : "cache only",
                (unsigned long long)hits, (unsigned long long)inferred,
                (unsigned long long)computed, disk->stats().simulated_ms);
  }

  // Accuracy of the exact rules, spot-checked.
  {
    auto storage = MakeInstallation(2048, 131072);
    StatisticalDbms dbms(storage.get());
    CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
    ViewDefinition def;
    def.source = "census";
    CheckOk(dbms.CreateView("v", def, MaintenancePolicy::kIncremental)
                .status());
    for (const char* fn : warm) Unwrap(dbms.Query("v", fn, "INCOME"));
    QueryOptions inf;
    inf.allow_inference = true;
    inf.cache_result = false;
    double inferred_mean = Unwrap(
        Unwrap(dbms.Query("v", "mean", "INCOME", {}, inf))
            .result.AsScalar());
    QueryOptions direct;
    direct.cache_result = false;
    double computed_mean = Unwrap(
        Unwrap(dbms.Query("v", "mean", "INCOME", {}, direct))
            .result.AsScalar());
    std::printf("\nexact-rule accuracy: inferred mean %.6f vs computed"
                " %.6f (delta %.2e)\n",
                inferred_mean, computed_mean,
                std::abs(inferred_mean - computed_mean));
  }
  std::printf(
      "shape check: inference converts most would-be computations into"
      " zero-I/O derivations with exact answers.\n");
  return 0;
}

// E15 — Secondary indexes on view attributes (§2.3): "This information
// can then be used, for example, to create auxiliary storage structures
// such as indices". Claim: selective probes through a B+-tree index
// touch tree-height pages instead of scanning the column, and the index
// is kept consistent under updates.

#include "bench/bench_util.h"
#include "core/dbms.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E15 bench_attr_index",
         "selective probes (find the ~0.1% recording errors): column scan vs"
         " maintained B+-tree index");

  std::printf("%9s | %12s %12s | %12s %12s\n", "rows", "scan pages",
              "scan ms", "index pages", "index ms");
  for (uint64_t rows : {20000ull, 100000ull, 400000ull}) {
    auto storage = MakeInstallation(4096, 1 << 18);
    StatisticalDbms dbms(storage.get());
    CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
    ViewDefinition def;
    def.source = "census";
    CheckOk(dbms.CreateView("v", def, MaintenancePolicy::kIncremental)
                .status());
    SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));
    BufferPool* pool = Unwrap(storage->GetPool("disk"));

    // Scan path (no index yet), cold pool.
    CheckOk(pool->FlushAll());
    CheckOk(pool->Reset());
    pool->ResetStats();
    disk->ResetStats();
    Unwrap(dbms.CountWhereEqual("v", "AGE", Value::Int(1000)));  // planted errors, ~0.1%
    uint64_t scan_pages = pool->stats().misses;
    double scan_ms = disk->stats().simulated_ms;

    CheckOk(dbms.CreateAttributeIndex("v", "AGE"));
    CheckOk(pool->FlushAll());
    CheckOk(pool->Reset());
    pool->ResetStats();
    disk->ResetStats();
    bool used_index = false;
    Unwrap(dbms.CountWhereEqual("v", "AGE", Value::Int(1000), &used_index));
    if (!used_index) {
      std::fprintf(stderr, "index not used!\n");
      return 1;
    }
    std::printf("%9llu | %12llu %12.1f | %12llu %12.1f\n",
                (unsigned long long)rows,
                (unsigned long long)scan_pages, scan_ms,
                (unsigned long long)pool->stats().misses,
                disk->stats().simulated_ms);
  }

  // Consistency under a stream of updates.
  {
    auto storage = MakeInstallation(4096, 1 << 18);
    StatisticalDbms dbms(storage.get());
    CheckOk(dbms.LoadRawDataSet("census", MakeCensus(50000)));
    ViewDefinition def;
    def.source = "census";
    CheckOk(dbms.CreateView("v", def, MaintenancePolicy::kIncremental)
                .status());
    CheckOk(dbms.CreateAttributeIndex("v", "AGE"));
    WallTimer t;
    for (int i = 0; i < 20; ++i) {
      UpdateSpec spec;
      spec.predicate = Eq(Col("AGE"), Lit(int64_t{20 + i}));
      spec.column = "AGE";
      spec.value = Add(Col("AGE"), Lit(int64_t{1}));
      Unwrap(dbms.Update("v", spec));
    }
    bool used = false;
    uint64_t indexed =
        Unwrap(dbms.CountWhereEqual("v", "AGE", Value::Int(40), &used));
    // Scan ground truth.
    auto col = Unwrap(dbms.GetView("v"))->ReadColumn("AGE").value();
    uint64_t scan = 0;
    for (const Value& v : col) {
      if (v == Value::Int(40)) ++scan;
    }
    std::printf("\nafter 20 predicate updates: indexed count %llu =="
                " scan count %llu (%s), maintenance wall %.1f ms\n",
                (unsigned long long)indexed, (unsigned long long)scan,
                indexed == scan ? "consistent" : "BROKEN",
                t.ElapsedMs());
  }
  std::printf(
      "shape check: probe I/O is flat (tree height) while scans grow"
      " linearly with rows; updates keep the index consistent.\n");
  return 0;
}

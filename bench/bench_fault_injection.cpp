// Durability tax and fault-absorption cost (DESIGN.md §11). Three
// installations run the bench_parallel_scan workload shape — a no-cache
// statistic battery over INCOME plus an update/commit cycle — on the same
// census rows:
//
//   baseline  plain devices, durability off (the pre-§11 configuration)
//   durable   checksumming pool + WAL commits, zero faults injected —
//             the headline series: its overhead vs baseline is the price
//             of crash safety, budgeted at <= 10% on the scan phase
//   faulty    durable plus a seed-driven transient-fault schedule on the
//             disk, showing what bounded retry adds when the storage
//             actually misbehaves
//
// Emits BENCH_fault_injection.json with the wall clocks, the overhead
// percentages, the fault/retry counters of the faulty run, and the
// durable run's DumpMetrics() snapshot. argv[1] overrides the row count.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dbms.h"
#include "fault/fault.h"
#include "relational/expr.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

constexpr uint64_t kDefaultRows = 200'000;
constexpr int kScanReps = 3;
constexpr int kCommitReps = 5;
const char* kAttr = "INCOME";
const std::vector<std::string> kBattery = {
    "count", "sum",  "mean", "variance", "stddev",   "min",
    "max",   "range", "mode", "distinct", "histogram"};

struct RunResult {
  double setup_ms = 0;   // load + view materialization (committed)
  double scan_ms = 0;    // kScanReps x no-cache battery
  double commit_ms = 0;  // kCommitReps x (update + cached query)
  uint64_t retries = 0;
  double backoff_ms = 0;
  uint64_t transient_errors = 0;
  std::string metrics;  // DumpMetrics() of this run
};

struct Rig {
  std::unique_ptr<StorageManager> storage;
  FaultInjectingDevice* disk = nullptr;
};

/// Every configuration mounts the same device classes (the fault device
/// with an empty schedule is a plain passthrough) so wall clocks compare
/// implementations, not virtual-dispatch differences.
Rig MakeRig(const FaultSchedule& disk_faults, bool with_wal) {
  Rig rig;
  rig.storage = std::make_unique<StorageManager>();
  CheckOk(rig.storage->AddDevice("tape", DeviceCostModel::Tape(), 1024)
              .status());
  auto disk = std::make_unique<FaultInjectingDevice>(
      "disk", DeviceCostModel::Disk(), disk_faults);
  rig.disk = disk.get();
  CheckOk(rig.storage->AdoptDevice("disk", std::move(disk), 32768).status());
  if (with_wal) {
    CheckOk(rig.storage
                ->AddDevice("wal", DeviceCostModel::Disk(), /*pool_pages=*/8)
                .status());
  }
  return rig;
}

RunResult RunWorkload(const Table& raw, bool durable,
                      const FaultSchedule& disk_faults) {
  Rig rig = MakeRig(disk_faults, durable);
  StatisticalDbms dbms(rig.storage.get());
  if (durable) CheckOk(dbms.EnableDurability("wal"));

  RunResult out;
  {
    WallTimer t;
    CheckOk(dbms.LoadRawDataSet("census", raw));
    ViewDefinition def;
    def.source = "census";
    Unwrap(dbms.CreateView("v", def, MaintenancePolicy::kIncremental));
    out.setup_ms = t.ElapsedMs();
  }

  QueryOptions no_cache;
  no_cache.cache_result = false;
  // Warm the pool once; the timed reps then measure scan + verify work.
  for (const std::string& fn : kBattery) {
    Unwrap(dbms.Query("v", fn, kAttr, {}, no_cache));
  }
  {
    WallTimer t;
    for (int rep = 0; rep < kScanReps; ++rep) {
      for (const std::string& fn : kBattery) {
        Unwrap(dbms.Query("v", fn, kAttr, {}, no_cache));
      }
    }
    out.scan_ms = t.ElapsedMs();
  }
  {
    WallTimer t;
    for (int rep = 0; rep < kCommitReps; ++rep) {
      UpdateSpec spec;
      spec.predicate = Lt(Col("AGE"), Lit(int64_t{25 + rep}));
      spec.column = kAttr;
      spec.value = Mul(Col(kAttr), Lit(1.01));
      spec.description = "bench commit " + std::to_string(rep);
      Unwrap(dbms.Update("v", spec));
      Unwrap(dbms.Query("v", "mean", kAttr));
    }
    out.commit_ms = t.ElapsedMs();
  }

  BufferPoolStats pool = Unwrap(rig.storage->GetPool("disk"))->stats();
  out.retries = pool.retries;
  out.backoff_ms = pool.backoff_ms;
  out.transient_errors = rig.disk->counters().transient_errors;
  out.metrics = dbms.DumpMetrics();
  return out;
}

double OverheadPct(double durable, double baseline) {
  return baseline <= 0 ? 0 : (durable - baseline) / baseline * 100.0;
}

std::string PhaseJson(const std::string& config, const RunResult& r) {
  return JsonObject()
      .Str("config", config)
      .Num("setup_ms", r.setup_ms)
      .Num("scan_ms", r.scan_ms)
      .Num("commit_ms", r.commit_ms)
      .Int("retries", r.retries)
      .Num("backoff_ms", r.backoff_ms)
      .Int("transient_errors", r.transient_errors)
      .Build();
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = kDefaultRows;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  Header("fault_injection",
         "Checksummed pages + WAL commits vs the bare installation, and "
         "the bounded-retry cost under injected transient faults.");
  std::printf("rows: %llu  scan reps: %d  commit reps: %d\n",
              (unsigned long long)rows, kScanReps, kCommitReps);

  Table raw = MakeCensus(rows);

  RunResult baseline = RunWorkload(raw, /*durable=*/false, {});
  RunResult durable = RunWorkload(raw, /*durable=*/true, {});
  // Transient-only faults (bit flips would rightly DATA_LOSS the scan):
  // every 7th of the first 700 disk writes fails once, landing across
  // the setup flushes and the commit phase.
  FaultSchedule flaky;
  for (uint64_t nth = 7; nth <= 700; nth += 7) {
    flaky.events.push_back(
        {FaultKind::kTransientError, /*on_write=*/true, nth, 0});
  }
  RunResult faulty = RunWorkload(raw, /*durable=*/true, flaky);

  double scan_pct = OverheadPct(durable.scan_ms, baseline.scan_ms);
  double commit_pct = OverheadPct(durable.commit_ms, baseline.commit_ms);
  double setup_pct = OverheadPct(durable.setup_ms, baseline.setup_ms);

  std::printf("\n%10s %12s %12s %12s %9s %12s\n", "config", "setup ms",
              "scan ms", "commit ms", "retries", "backoff ms");
  struct Row {
    const char* name;
    const RunResult* r;
  } rows_out[] = {{"baseline", &baseline}, {"durable", &durable},
                  {"faulty", &faulty}};
  for (const Row& row : rows_out) {
    std::printf("%10s %12.2f %12.2f %12.2f %9llu %12.2f\n", row.name,
                row.r->setup_ms, row.r->scan_ms, row.r->commit_ms,
                (unsigned long long)row.r->retries, row.r->backoff_ms);
  }
  std::printf("\ndurability overhead: setup %+.1f%%  scan %+.1f%%  "
              "commit %+.1f%%  (scan budget: <= 10%%)\n",
              setup_pct, scan_pct, commit_pct);
  std::printf("faulty run absorbed %llu transient errors with %llu "
              "retries, %.1f ms simulated backoff\n",
              (unsigned long long)faulty.transient_errors,
              (unsigned long long)faulty.retries, faulty.backoff_ms);

  WriteBenchJson(
      "fault_injection",
      JsonObject()
          .Str("bench", "fault_injection")
          .Int("rows", rows)
          .Str("attribute", kAttr)
          .Int("battery_size", kBattery.size())
          .Int("scan_reps", kScanReps)
          .Int("commit_reps", kCommitReps)
          .Raw("phases", JsonArray({PhaseJson("baseline", baseline),
                                    PhaseJson("durable", durable),
                                    PhaseJson("faulty", faulty)}))
          .Num("scan_overhead_pct", scan_pct)
          .Num("commit_overhead_pct", commit_pct)
          .Num("setup_overhead_pct", setup_pct)
          .Raw("metrics", durable.metrics)
          .Build());
  return 0;
}

// E8 — Concrete views amortize tape extraction (§2.3).
// Claim: "Using concrete views requires some additional tape storage but
// avoids the generation of the view from tape storage each time it is
// used. Thus, the cost of materializing the view is amortized over its
// period of use."

#include "bench/bench_util.h"
#include "core/dbms.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E8 bench_view_amortization",
         "re-derive from tape per use vs materialize once on disk");

  const uint64_t rows = 50000;
  auto storage = MakeInstallation(2048, 65536);
  StatisticalDbms dbms(storage.get());
  CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
  SimulatedDevice* tape = Unwrap(storage->GetDevice("tape"));
  SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));

  ViewDefinition def;
  def.source = "census";
  def.predicate = Gt(Col("AGE"), Lit(int64_t{18}));

  tape->ResetStats();
  ViewCreation vc =
      Unwrap(dbms.CreateView("v", def, MaintenancePolicy::kIncremental));
  double materialize_ms = tape->stats().simulated_ms;

  // Cost of one use against the concrete view (a few column stats).
  auto one_use = [&]() {
    QueryOptions no_cache;
    no_cache.cache_result = false;  // isolate view I/O from E1's effect
    Unwrap(dbms.Query(vc.name, "mean", "INCOME", {}, no_cache));
    Unwrap(dbms.Query(vc.name, "median", "INCOME", {}, no_cache));
  };
  // Cold session: the analyst comes back tomorrow; nothing is cached.
  BufferPool* disk_pool = Unwrap(storage->GetPool("disk"));
  CheckOk(disk_pool->FlushAll());
  CheckOk(disk_pool->Reset());
  disk->ResetStats();
  one_use();
  double disk_use_ms = disk->stats().simulated_ms;

  // Tape-only alternative: re-derive per use, then compute in memory.
  tape->ResetStats();
  Table rederived = Unwrap(dbms.RematerializeFromTape(vc.name));
  double tape_use_ms = tape->stats().simulated_ms;
  (void)rederived;

  std::printf("materialize once (tape ms):        %10.0f\n",
              materialize_ms);
  std::printf("per-use cost on concrete view:     %10.0f\n", disk_use_ms);
  std::printf("per-use cost re-deriving from tape:%10.0f\n\n",
              tape_use_ms);

  std::printf("%6s | %16s %16s | %s\n", "uses", "tape-only ms",
              "materialized ms", "winner");
  int break_even = -1;
  for (int uses : {1, 2, 3, 5, 10, 20, 50}) {
    double tape_total = tape_use_ms * uses;
    double view_total = materialize_ms + disk_use_ms * uses;
    if (break_even < 0 && view_total < tape_total) break_even = uses;
    std::printf("%6d | %16.0f %16.0f | %s\n", uses, tape_total,
                view_total,
                view_total < tape_total ? "concrete view" : "tape-only");
  }
  std::printf(
      "\nshape check: the concrete view wins after ~%d uses; a months-long"
      " analysis (hundreds of uses) amortizes materialization completely."
      "\n",
      break_even);
  return 0;
}

// E2 — Transposed vs. row storage for statistical operations (§2.6).
// Claim: "a transposed file organization will minimize the number of
// I/O operations needed to retrieve all entries in a column"; reading
// k of m columns costs ~k/m of the row-store scan.

#include "bench/bench_util.h"
#include "relational/stored_table.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E2 bench_transposed_vs_row",
         "column aggregates: few columns, every row (statistical access)");

  std::printf("%9s %4s | %10s %12s | %10s %12s | %8s\n", "rows",
              "cols", "row pages", "row ms", "col pages", "col ms",
              "I/O ratio");
  for (uint64_t rows : {20000ull, 100000ull}) {
    Table census = MakeCensus(rows);
    for (int k : {1, 3, 9}) {
      auto storage = MakeInstallation(1024, 65536);
      BufferPool* pool = Unwrap(storage->GetPool("disk"));
      SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));

      StoredRowTable row_table(census.schema(), pool);
      CheckOk(row_table.LoadFrom(census));
      TransposedTable col_table(census.schema(), pool);
      CheckOk(col_table.LoadFrom(census));
      CheckOk(pool->FlushAll());
      CheckOk(pool->Reset());

      // The k columns to aggregate.
      std::vector<std::string> cols;
      for (int c = 0; c < k; ++c) {
        cols.push_back(census.schema().attr(size_t(c)).name);
      }

      pool->ResetStats();
      disk->ResetStats();
      for (const std::string& name : cols) {
        Unwrap(col_table.ReadColumn(name));
      }
      uint64_t col_pages = pool->stats().misses;
      double col_ms = disk->stats().simulated_ms;

      CheckOk(pool->Reset());
      pool->ResetStats();
      disk->ResetStats();
      CheckOk(row_table.Scan([](const Row&) { return Status::OK(); }));
      uint64_t row_pages = pool->stats().misses;
      double row_ms = disk->stats().simulated_ms;

      std::printf("%9llu %4d | %10llu %12.1f | %10llu %12.1f | %7.1fx\n",
                  (unsigned long long)rows, k,
                  (unsigned long long)row_pages, row_ms,
                  (unsigned long long)col_pages, col_ms,
                  double(row_pages) / double(col_pages));
    }
  }
  std::printf(
      "\nshape check: transposed I/O scales with k (columns touched); the"
      " row store always scans everything.\n");
  return 0;
}

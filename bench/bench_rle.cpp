// E4 — Run-length compression down columns vs. across rows (§2.6).
// Claim: "run-length compression techniques are more likely to improve
// storage efficiency when they are applied down a column rather than
// across a row", especially for sorted/clustered category data.

#include "bench/bench_util.h"
#include "storage/rle.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

std::vector<std::optional<int64_t>> CellsOf(const Table& t,
                                            const std::string& attr) {
  std::vector<std::optional<int64_t>> cells;
  size_t idx = Unwrap(t.schema().IndexOf(attr));
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const Value& v = t.At(r, idx);
    if (v.is_null()) {
      cells.push_back(std::nullopt);
    } else if (v.type() == DataType::kInt64) {
      cells.push_back(v.AsInt());
    } else {
      cells.push_back(int64_t(v.AsReal()));
    }
  }
  return cells;
}

double Ratio(const std::vector<std::optional<int64_t>>& cells) {
  return double(RawColumnBytes(cells.size())) /
         double(RleEncodedBytes(RleEncode(cells)));
}

}  // namespace

int main() {
  Header("E4 bench_rle",
         "RLE compression ratio: down columns vs across rows, sorted vs"
         " unsorted");

  const uint64_t rows = 50000;
  std::printf("%12s | %10s %10s\n", "series", "unsorted", "sorted");
  Table unsorted = MakeCensus(rows, 42, /*sorted=*/false);
  Table sorted = MakeCensus(rows, 42, /*sorted=*/true);

  for (const char* attr :
       {"SEX", "RACE", "AGE_GROUP", "REGION", "EDUCATION", "INCOME"}) {
    std::printf("%12s | %9.1fx %9.1fx\n", attr,
                Ratio(CellsOf(unsorted, attr)),
                Ratio(CellsOf(sorted, attr)));
  }

  // "Across a row": interleave all attributes in row-major order, the
  // byte stream a row store would feed the compressor.
  auto row_major = [](const Table& t) {
    std::vector<std::optional<int64_t>> cells;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (size_t c = 0; c < t.num_columns(); ++c) {
        const Value& v = t.At(r, c);
        if (v.is_null()) {
          cells.push_back(std::nullopt);
        } else if (v.type() == DataType::kInt64) {
          cells.push_back(v.AsInt());
        } else {
          cells.push_back(int64_t(v.AsReal()));
        }
      }
    }
    return cells;
  };
  std::printf("%12s | %9.2fx %9.2fx\n", "row-major",
              Ratio(row_major(unsorted)), Ratio(row_major(sorted)));

  // Scan I/O implication: pages needed for the AGE_GROUP column.
  auto cells = CellsOf(sorted, "AGE_GROUP");
  size_t raw_pages = (RawColumnBytes(cells.size()) + kPageSize - 1) /
                     kPageSize;
  size_t rle_pages =
      (RleEncodedBytes(RleEncode(cells)) + kPageSize - 1) / kPageSize;
  std::printf(
      "\nAGE_GROUP column scan (sorted): %zu raw pages vs %zu compressed"
      " pages\n",
      raw_pages, rle_pages);
  std::printf(
      "shape check: category columns compress by orders of magnitude when"
      " clustered; row-major interleaving destroys the runs.\n");
  return 0;
}

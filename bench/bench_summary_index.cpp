// E12 — Indexing and clustering the Summary Database itself (§3.2).
// Claim: "To enhance access to the Summary Database (which may itself
// become relatively large), we envision the use of a secondary index on
// function name-attribute name. Data will most likely be clustered on
// attribute name to facilitate efficient access to all results on a
// given column."

#include "bench/bench_util.h"
#include "summary/summary_db.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E12 bench_summary_index",
         "B+-tree probe vs full scan; clustered per-attribute enumeration");

  std::printf("%9s | %11s %11s %9s | %16s\n", "entries", "probe pages",
              "scan pages", "speedup", "cluster scan pages");
  for (int n_attrs : {20, 200, 2000}) {
    const int fns_per_attr = 12;
    auto storage = MakeInstallation(1024, 1 << 18);
    BufferPool* pool = Unwrap(storage->GetPool("disk"));
    auto db = Unwrap(SummaryDatabase::Create(pool));

    for (int a = 0; a < n_attrs; ++a) {
      char attr[32];
      std::snprintf(attr, sizeof(attr), "ATTR%05d", a);
      for (int f = 0; f < fns_per_attr; ++f) {
        CheckOk(db->Insert(
            SummaryKey::Of("fn" + std::to_string(f), attr),
            SummaryResult::Scalar(a * 100.0 + f), 0));
      }
    }
    CheckOk(pool->FlushAll());
    CheckOk(pool->Reset());

    // Indexed point probe: height-of-tree page touches.
    pool->ResetStats();
    Unwrap(db->Lookup(SummaryKey::Of("fn7", "ATTR00013")));
    uint64_t probe_pages = pool->stats().misses;

    // The unindexed alternative: walk every leaf.
    CheckOk(pool->Reset());
    pool->ResetStats();
    uint64_t seen = 0;
    CheckOk(db->index()->ScanRange(
        "", "", [&seen](const std::string&, const std::string&) {
          ++seen;
          return true;
        }));
    uint64_t scan_pages = pool->stats().misses;

    // Clustered enumeration of one attribute's results — the access the
    // maintenance rules perform on every update (§4.1).
    CheckOk(pool->Reset());
    pool->ResetStats();
    uint64_t cluster_entries = 0;
    CheckOk(db->ForEachOnAttribute(
        "ATTR00013", [&cluster_entries](const SummaryEntry&) {
          ++cluster_entries;
          return Status::OK();
        }));
    uint64_t cluster_pages = pool->stats().misses;

    std::printf("%9d | %11llu %11llu %8.1fx | %9llu (%llu hits)\n",
                n_attrs * fns_per_attr,
                (unsigned long long)probe_pages,
                (unsigned long long)scan_pages,
                double(scan_pages) / double(probe_pages),
                (unsigned long long)cluster_pages,
                (unsigned long long)cluster_entries);
    (void)seen;
  }
  std::printf(
      "\nshape check: probes touch tree-height pages regardless of size;"
      " scans grow linearly; one attribute's dozen results live on a"
      " handful of adjacent pages.\n");
  return 0;
}

// E9 — Sampling for exploratory responsiveness (§2.2).
// Claim: "in order to enhance responsiveness, the statistician may base
// this preliminary analysis on a set of sample records drawn at random
// ... Forming an impression of the structure of the data based on a
// small sampling is sufficient."

#include <cmath>

#include "bench/bench_util.h"
#include "core/dbms.h"
#include "stats/order.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E9 bench_sampling",
         "sample fraction vs I/O cost and estimate error");

  const uint64_t rows = 200000;
  auto storage = MakeInstallation(4096, 262144);
  StatisticalDbms dbms(storage.get());
  Table census = MakeCensus(rows);
  CheckOk(dbms.LoadRawDataSet("census", census));
  SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));

  // Ground truth on the full data.
  std::vector<double> incomes = Unwrap(census.NumericColumn("INCOME"));
  double true_median = Unwrap(Median(incomes));
  double true_p90 = Unwrap(Quantile(incomes, 0.9));

  std::printf("%9s | %9s %12s | %12s %12s\n", "sample", "rows",
              "query ms", "median err%", "p90 err%");
  for (double frac : {0.01, 0.05, 0.10, 0.25, 1.00}) {
    ViewDefinition def;
    def.source = "census";
    def.sample_fraction = frac;
    std::string name = "s" + std::to_string(int(frac * 100));
    ViewCreation vc =
        Unwrap(dbms.CreateView(name, def, MaintenancePolicy::kInvalidate));

    QueryOptions no_cache;
    no_cache.cache_result = false;
    disk->ResetStats();
    WallTimer t;
    double est_median = Unwrap(
        Unwrap(dbms.Query(vc.name, "median", "INCOME", {}, no_cache))
            .result.AsScalar());
    double est_p90 =
        Unwrap(Unwrap(dbms.Query(vc.name, "quantile", "INCOME",
                                 FunctionParams().Set("p", 0.9), no_cache))
                   .result.AsScalar());
    double ms = disk->stats().simulated_ms + t.ElapsedMs();

    std::printf("%8.0f%% | %9llu %12.1f | %11.2f%% %11.2f%%\n",
                frac * 100,
                (unsigned long long)Unwrap(dbms.GetView(vc.name))
                    ->num_rows(),
                ms, 100 * std::abs(est_median - true_median) / true_median,
                100 * std::abs(est_p90 - true_p90) / true_p90);
  }
  std::printf(
      "\nshape check: query cost scales with the sample fraction while"
      " order-statistic error stays within a few percent even at 5%%.\n");
  return 0;
}

// Ablations of statdb's own design choices (DESIGN.md §4 footnotes):
//  A. transposed bulk-load order — column-contiguous vs row-interleaved
//     page placement (the property that makes column scans sequential);
//  B. buffer pool size vs repeated-scan cost (when the working set fits,
//     re-scans are free; the paper's memory-management complaint about
//     Minitab/S in §2.4);
//  C. compressed vs raw column storage for scan I/O (Eggers, §2.6).

#include "bench/bench_util.h"
#include "relational/stored_table.h"
#include "storage/compressed_column_file.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

void AblationA() {
  std::printf("--- A: transposed load order (20k rows, 9 columns) ---\n");
  Table census = MakeCensus(20000);
  for (bool columnar : {false, true}) {
    auto storage = MakeInstallation(1024, 65536);
    BufferPool* pool = Unwrap(storage->GetPool("disk"));
    SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));
    TransposedTable t(census.schema(), pool);
    if (columnar) {
      CheckOk(t.LoadFrom(census));  // column-at-a-time (the default)
    } else {
      for (size_t r = 0; r < census.num_rows(); ++r) {
        CheckOk(t.Append(census.GetRow(r)));  // row-at-a-time interleaving
      }
    }
    CheckOk(pool->FlushAll());
    CheckOk(pool->Reset());
    disk->ResetStats();
    Unwrap(t.ReadNumericColumn("INCOME"));
    std::printf("  %-16s: %5llu reads, %6llu seeks, %8.0f ms\n",
                columnar ? "column-contiguous" : "row-interleaved",
                (unsigned long long)disk->stats().block_reads,
                (unsigned long long)disk->stats().seeks,
                disk->stats().simulated_ms);
  }
}

void AblationB() {
  std::printf("\n--- B: buffer pool size vs repeated column scans ---\n");
  Table census = MakeCensus(50000);  // INCOME column = 100 pages
  std::printf("  %10s | %12s %12s\n", "pool pages", "scan1 reads",
              "scan2 reads");
  for (size_t pool_pages : {16ull, 64ull, 128ull, 1024ull}) {
    auto storage = std::make_unique<StorageManager>();
    CheckOk(storage->AddDevice("disk", DeviceCostModel::Disk(),
                               pool_pages)
                .status());
    BufferPool* pool = Unwrap(storage->GetPool("disk"));
    TransposedTable t(census.schema(), pool);
    CheckOk(t.LoadFrom(census));
    CheckOk(pool->FlushAll());
    CheckOk(pool->Reset());
    pool->ResetStats();
    Unwrap(t.ReadNumericColumn("INCOME"));
    uint64_t scan1 = pool->stats().misses;
    pool->ResetStats();
    Unwrap(t.ReadNumericColumn("INCOME"));
    uint64_t scan2 = pool->stats().misses;
    std::printf("  %10zu | %12llu %12llu\n", pool_pages,
                (unsigned long long)scan1, (unsigned long long)scan2);
  }
}

}  // namespace

int main() {
  Header("bench_ablation", "design-choice ablations (see DESIGN.md)");
  AblationA();
  AblationB();
  // C below, kept out of the helper to avoid storage lifetime juggling.
  std::printf("\n--- C: compressed vs raw column storage (clustered"
              " AGE_GROUP, 100k rows) ---\n");
  Table census = MakeCensus(100000, 42, /*sorted=*/true);
  std::vector<std::optional<int64_t>> cells;
  size_t idx = Unwrap(census.schema().IndexOf("AGE_GROUP"));
  for (size_t r = 0; r < census.num_rows(); ++r) {
    const Value& v = census.At(r, idx);
    cells.push_back(v.is_null() ? std::optional<int64_t>()
                                : std::optional<int64_t>(v.AsInt()));
  }
  auto storage = MakeInstallation(1024, 65536);
  BufferPool* pool = Unwrap(storage->GetPool("disk"));
  SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));
  ColumnFile raw(pool);
  for (const auto& c : cells) CheckOk(raw.Append(c));
  CompressedColumnFile compressed(pool);
  CheckOk(compressed.Load(cells));
  CheckOk(pool->FlushAll());
  CheckOk(pool->Reset());

  pool->ResetStats();
  disk->ResetStats();
  CheckOk(raw.Scan(
      [](uint64_t, std::optional<int64_t>) { return Status::OK(); }));
  std::printf("  raw column       : %4zu pages, scan %5llu reads,"
              " %7.0f ms\n",
              raw.page_count(),
              (unsigned long long)pool->stats().misses,
              disk->stats().simulated_ms);
  CheckOk(pool->Reset());
  pool->ResetStats();
  disk->ResetStats();
  CheckOk(compressed.Scan(
      [](uint64_t, std::optional<int64_t>) { return Status::OK(); }));
  std::printf("  compressed column: %4zu pages, scan %5llu reads,"
              " %7.0f ms (ratio %.0fx)\n",
              compressed.page_count(),
              (unsigned long long)pool->stats().misses,
              disk->stats().simulated_ms,
              compressed.CompressionRatio());
  return 0;
}

// Compressed-domain aggregation vs the materializing paths (DESIGN.md
// §14, EXPERIMENTS.md E18). One concrete view of a *sorted* int64
// column whose values repeat for ~1000 rows each, so the RLE sidecar is
// a few pages where the transposed column file is hundreds. The disk
// pool is deliberately smaller than the raw column, so every
// materialized pass re-reads it from the device; the sidecar always
// fits. Three phases run the same mergeable battery:
//
//   materialized — planner kill switch off: full column read per query;
//   compressed   — sidecar scans, O(1) work per run;
//   row_file     — the §2.6 NSM baseline: a heap-file scan per query
//                  touches every page of every attribute.
//
// The headline series is the *simulated* cost model (simulated_ms,
// block_reads, seeks) — deterministic for a given access sequence, so
// the perf gate can hold the committed baseline to exact numbers and
// assert the >=3x compressed-vs-materialized win. Wall clocks are
// printed for context only. argv[1] overrides the row count.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dbms.h"
#include "relational/stored_table.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

constexpr uint64_t kDefaultRows = 200'000;
constexpr uint64_t kRunLength = 1000;  // cells per distinct value
constexpr int kScanReps = 3;
const std::vector<std::string> kBattery = {
    "count", "sum",  "mean",  "variance", "stddev",   "min",
    "max",   "range", "mode", "distinct", "histogram"};

/// Sorted single-attribute microdata: value i/kRunLength at row i.
Table MakeRunsTable(uint64_t rows) {
  Schema schema({Attribute::Numeric("CAT", DataType::kInt64)});
  Table t(schema);
  for (uint64_t i = 0; i < rows; ++i) {
    CheckOk(t.AppendRow({Value::Int(int64_t(i / kRunLength))}));
  }
  return t;
}

struct PhaseIo {
  double wall_ms = 0;
  IoStats io;
};

std::string PhaseJson(const std::string& name, const PhaseIo& p) {
  return JsonObject()
      .Str("phase", name)
      .Num("wall_ms", p.wall_ms)
      .Num("simulated_ms", p.io.simulated_ms)
      .Int("block_reads", p.io.block_reads)
      .Int("seeks", p.io.seeks)
      .Build();
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = kDefaultRows;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  Header("compressed_scan",
         "Compressed-domain RLE aggregation vs materialized column and "
         "row-file scans (sorted CAT, ~1000-cell runs).");
  std::printf("rows: %llu, run length: %llu, reps: %d\n",
              (unsigned long long)rows, (unsigned long long)kRunLength,
              kScanReps);

  // Disk pool of 128 frames: far smaller than the raw CAT column, so
  // materialized passes miss deterministically; the sidecar fits whole.
  auto sm = MakeInstallation(/*tape_pool=*/1024, /*disk_pool=*/128);
  SimulatedDevice* disk = Unwrap(sm->GetDevice("disk"));
  StatisticalDbms dbms(sm.get());
  Table data = MakeRunsTable(rows);
  CheckOk(dbms.LoadRawDataSet("runs", data, "sorted synthetic"));
  ViewDefinition def;
  def.source = "runs";
  Unwrap(dbms.CreateView("v", def, MaintenancePolicy::kInvalidate));

  QueryOptions no_cache;
  no_cache.cache_result = false;

  auto run_battery = [&](bool compressed) {
    dbms.set_compressed_scan_enabled(compressed);
    PhaseIo p;
    disk->ResetStats();
    WallTimer t;
    for (int rep = 0; rep < kScanReps; ++rep) {
      for (const std::string& fn : kBattery) {
        Unwrap(dbms.Query("v", fn, "CAT", {}, no_cache));
      }
    }
    p.wall_ms = t.ElapsedMs();
    p.io = disk->stats();
    return p;
  };

  // Warm pass (builds nothing, but faults the steady-state pool
  // contents in) so both timed column phases start identically.
  run_battery(false);

  PhaseIo materialized = run_battery(false);
  PhaseIo compressed = run_battery(true);

  // NSM baseline: a heap file of the same rows on the same small pool;
  // each statistic costs one full-file scan gathering the column.
  PhaseIo row_file;
  {
    BufferPool* pool = Unwrap(sm->GetPool("disk"));
    StoredRowTable heap(data.schema(), pool);
    CheckOk(heap.LoadFrom(data));
    disk->ResetStats();
    WallTimer t;
    for (int rep = 0; rep < kScanReps; ++rep) {
      for (size_t s = 0; s < kBattery.size(); ++s) {
        std::vector<double> cells;
        cells.reserve(rows);
        CheckOk(heap.Scan([&cells](const Row& row) -> Status {
          if (!row[0].is_null()) cells.push_back(double(row[0].AsInt()));
          return Status::OK();
        }));
        if (cells.empty()) return 1;
      }
    }
    row_file.wall_ms = t.ElapsedMs();
    row_file.io = disk->stats();
  }

  double speedup_sim =
      materialized.io.simulated_ms /
      (compressed.io.simulated_ms > 0 ? compressed.io.simulated_ms : 1.0);
  std::printf("%14s %14s %14s %10s\n", "phase", "simulated ms", "blk reads",
              "wall ms");
  for (auto& [name, p] :
       std::vector<std::pair<const char*, const PhaseIo*>>{
           {"materialized", &materialized},
           {"compressed", &compressed},
           {"row_file", &row_file}}) {
    std::printf("%14s %14.1f %14llu %10.1f\n", name, p->io.simulated_ms,
                (unsigned long long)p->io.block_reads, p->wall_ms);
  }
  std::printf("compressed-domain simulated speedup: %.1fx\n", speedup_sim);
  if (speedup_sim < 3.0) {
    std::printf("WARNING: below the 3x gate (see DESIGN.md §14)\n");
  }

  WriteBenchJson(
      "compressed_scan",
      JsonObject()
          .Str("bench", "compressed_scan")
          .Int("rows", rows)
          .Int("run_length", kRunLength)
          .Int("scan_reps", kScanReps)
          .Int("battery_size", kBattery.size())
          .Num("speedup_sim", speedup_sim)
          .Raw("phases",
               JsonArray({PhaseJson("materialized", materialized),
                          PhaseJson("compressed", compressed),
                          PhaseJson("row_file", row_file)}))
          .Raw("metrics", dbms.DumpMetrics())
          .Build());
  return 0;
}

// E10 — Undo via the update history (§3.2).
// Claim: "Keeping a history of updates for each view will enable the
// DBMS to roll a view back to a previous state" — at a cost proportional
// to the cells changed, not to re-materializing the view from tape.

#include "bench/bench_util.h"
#include "core/dbms.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E10 bench_rollback",
         "rollback(k updates) vs re-materializing the view from tape");

  const uint64_t rows = 50000;
  std::printf("%8s %12s | %14s %18s\n", "updates", "cells", "rollback ms",
              "rematerialize ms");
  for (int k : {1, 4, 16, 64}) {
    auto storage = MakeInstallation(2048, 65536);
    StatisticalDbms dbms(storage.get());
    CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
    ViewDefinition def;
    def.source = "census";
    ViewCreation vc = Unwrap(
        dbms.CreateView("v", def, MaintenancePolicy::kInvalidate));
    SimulatedDevice* tape = Unwrap(storage->GetDevice("tape"));
    SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));

    // k updates, each touching one age cohort.
    Rng rng(23);
    uint64_t cells = 0;
    for (int u = 0; u < k; ++u) {
      UpdateSpec spec;
      spec.predicate = Eq(Col("AGE"), Lit(rng.UniformInt(18, 80)));
      spec.column = "INCOME";
      spec.value = Mul(Col("INCOME"), Lit(1.001));
      cells += Unwrap(dbms.Update("v", spec));
    }

    disk->ResetStats();
    WallTimer rb_timer;
    CheckOk(dbms.Rollback("v", 0));
    double rollback_ms =
        disk->stats().simulated_ms + rb_timer.ElapsedMs();

    // The alternative: rebuild the concrete view from the raw tape.
    tape->ResetStats();
    WallTimer rm_timer;
    Unwrap(dbms.RematerializeFromTape("v"));
    double remat_ms = tape->stats().simulated_ms + rm_timer.ElapsedMs();

    std::printf("%8d %12llu | %14.1f %18.1f\n", k,
                (unsigned long long)cells, rollback_ms, remat_ms);
  }
  std::printf(
      "\nshape check: rollback cost scales with cells undone and stays"
      " far below the tape rematerialization it replaces.\n");
  return 0;
}

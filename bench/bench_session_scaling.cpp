// Multi-analyst session scaling on the deterministic cost model
// (DESIGN.md §15). One writer keeps mutating a census view while K
// analyst sessions (K = 1, 4, 8) each run the same read lane — three
// full column materializations through the snapshot-pinned session read
// path. Because the device cost model prices every page touch, each
// lane's cost in simulated milliseconds is machine-independent; the
// makespan model then compares two worlds:
//
//   serial world   — readers block on the writer and on each other
//                    (the pre-session coarse-latch design):
//                    makespan = writer + sum(reader lanes)
//   session world  — snapshot-isolated lanes are independent (the
//                    TSan-verified property the stress harness proves),
//                    so they overlap: makespan = max(writer, lanes...)
//
// Reader throughput is column reads per simulated second in the session
// world; the perf gate holds the 4-session speedup at >= 2x over one
// session (scripts/check_bench_schema.py) and diffs every simulated
// series against bench/baseline/ (scripts/compare_bench.py).
//
// The disk pool is deliberately smaller than one lane's working set so
// every lane pays real device reads (no free rides from a warm pool),
// and a pinned observer session is held open across the writer's
// updates so the writer also pays the snapshot capture cost.
// argv[1] overrides the row count (CI runs a small one).

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dbms.h"
#include "session/session.h"

using namespace statdb;
using namespace statdb::bench;

namespace {

constexpr uint64_t kDefaultRows = 200'000;
constexpr int kWriterUpdates = 2;
const std::vector<std::string> kLaneColumns = {"AGE", "INCOME",
                                               "HOURS_WORKED"};
const int kSessionCounts[] = {1, 4, 8};

double SimMs(StorageManager* sm) {
  double total = 0;
  for (const char* dev : {"tape", "disk"}) {
    total += double(Unwrap(sm->GetDevice(dev))->stats().simulated_ms);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = kDefaultRows;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  Header("session_scaling",
         "Snapshot-isolated reader lanes vs the serial (readers-block-on-"
         "writer) world, priced by the device cost model.");
  std::printf("rows: %llu, writer updates per series: %d, "
              "columns per lane: %zu\n",
              (unsigned long long)rows, kWriterUpdates, kLaneColumns.size());

  // Size the disk pool to ~1/6 of one lane's working set (a lane reads
  // 3 columns of rows*8 bytes each, ~3*rows/512 pages) so lanes always
  // touch the device — a pool that held the lane would price reads at
  // zero and say nothing about the read path.
  const size_t disk_pool = std::max<uint64_t>(64, rows / 1024);
  auto sm = MakeInstallation(/*tape_pool=*/1024, disk_pool);
  std::printf("disk pool: %zu pages\n", disk_pool);
  StatisticalDbms dbms(sm.get());
  CheckOk(dbms.LoadRawDataSet("census", MakeCensus(rows)));
  ViewDefinition def;
  def.source = "census";
  Unwrap(dbms.CreateView("v", def, MaintenancePolicy::kInvalidate));

  session::SessionConfig cfg;
  cfg.max_sessions = 10;  // 8 lanes + the pinned observer + slack
  session::SessionManager* mgr = Unwrap(dbms.EnableSessions(cfg));

  std::printf("  %-9s %12s %14s %16s %16s %12s\n", "SESSIONS",
              "WRITER_MS", "LANE_MAX_MS", "SERIAL_MS", "SESSION_MS",
              "READS/SIM-S");

  struct Series {
    int sessions;
    double writer_ms;
    double lane_max_ms;
    double lane_sum_ms;
    double serial_ms;
    double session_ms;
    double throughput;
  };
  std::vector<Series> series;

  // Every series (and the warm-up round below) runs the identical
  // writer workload: same predicate, same cells touched, so the series
  // differ only in the number of reader lanes.
  auto run_writer = [&] {
    for (int u = 0; u < kWriterUpdates; ++u) {
      UpdateSpec spec;
      spec.predicate = Lt(Col("AGE"), Lit(int64_t{32}));
      spec.column = "INCOME";
      spec.value = Mul(Col("INCOME"), Lit(1.0001));
      Unwrap(dbms.Update("v", spec));
    }
  };
  auto run_lane = [&](session::Session* s) {
    for (const std::string& col : kLaneColumns) {
      Unwrap(s->ReadColumn("v", col));
    }
  };

  // Untimed warm-up round: one full writer + lane cycle moves the pool,
  // the update log and the snapshot registry into steady state so the
  // K=1 series is priced the same as the later ones.
  {
    session::Session* observer = Unwrap(mgr->Open("warmup-observer"));
    run_writer();
    CheckOk(observer->Close());
    session::Session* warm = Unwrap(mgr->Open("warmup-lane"));
    run_lane(warm);
    CheckOk(warm->Close());
  }

  for (int k : kSessionCounts) {
    // The observer pins the pre-update seq, so the writer's updates pay
    // the full snapshot protocol: column capture, route block, grace.
    session::Session* observer = Unwrap(mgr->Open("observer"));
    const double w0 = SimMs(sm.get());
    run_writer();
    const double writer_ms = SimMs(sm.get()) - w0;
    CheckOk(observer->Close());

    std::vector<double> lane_ms;
    for (int i = 0; i < k; ++i) {
      session::Session* s =
          Unwrap(mgr->Open("lane" + std::to_string(i)));
      const double r0 = SimMs(sm.get());
      run_lane(s);
      lane_ms.push_back(SimMs(sm.get()) - r0);
      CheckOk(s->Close());
    }

    Series out;
    out.sessions = k;
    out.writer_ms = writer_ms;
    out.lane_max_ms = *std::max_element(lane_ms.begin(), lane_ms.end());
    out.lane_sum_ms = 0;
    for (double r : lane_ms) out.lane_sum_ms += r;
    out.serial_ms = writer_ms + out.lane_sum_ms;
    out.session_ms = std::max(writer_ms, out.lane_max_ms);
    out.throughput =
        double(k * kLaneColumns.size()) * 1000.0 / out.session_ms;
    series.push_back(out);

    std::printf("  %-9d %12.1f %14.1f %16.1f %16.1f %12.3f\n", k,
                out.writer_ms, out.lane_max_ms, out.serial_ms,
                out.session_ms, out.throughput);
  }

  const double speedup_4 = series[1].throughput / series[0].throughput;
  const double speedup_8 = series[2].throughput / series[0].throughput;
  std::printf("\nreader throughput speedup: 4 sessions %.2fx, "
              "8 sessions %.2fx (gate: 4-session >= 2x)\n",
              speedup_4, speedup_8);

  std::vector<std::string> rows_json;
  for (const Series& s : series) {
    rows_json.push_back(
        JsonObject()
            .Int("sessions", uint64_t(s.sessions))
            .Num("writer_simulated_ms", s.writer_ms)
            .Num("lane_max_simulated_ms", s.lane_max_ms)
            .Num("lane_sum_simulated_ms", s.lane_sum_ms)
            .Num("serial_makespan_simulated_ms", s.serial_ms)
            .Num("simulated_ms", s.session_ms)  // gated by compare_bench
            .Num("reader_throughput", s.throughput)
            .Build());
  }
  WriteBenchJson(
      "session_scaling",
      JsonObject()
          .Str("bench", "session_scaling")
          .Int("rows", rows)
          .Int("reads_per_lane", kLaneColumns.size())
          .Int("writer_updates", kWriterUpdates)
          .Raw("series", JsonArray(rows_json))
          .Num("speedup_4", speedup_4)
          .Num("speedup_8", speedup_8)
          .Raw("metrics", dbms.DumpMetrics())
          .Build());
  return 0;
}

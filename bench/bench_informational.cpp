// E3 — The transposed file's weakness (§2.6): "informational" queries.
// Claim: "they provide poor performance on 'informational' queries such
// as 'find the average salary and population of all white males in the
// 21-40 age group'" — whole-row retrieval touches one page per column.

#include "bench/bench_util.h"
#include "relational/stored_table.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E3 bench_informational",
         "whole-row point reads: row store wins, transposed pays one page"
         " per column");

  const uint64_t rows = 100000;
  Table census = MakeCensus(rows);

  std::printf("%12s | %12s %12s | %12s %12s\n", "point reads",
              "row pages", "row ms", "col pages", "col ms");
  for (int lookups : {1, 10, 100}) {
    auto storage = MakeInstallation(1024, 65536);
    BufferPool* pool = Unwrap(storage->GetPool("disk"));
    SimulatedDevice* disk = Unwrap(storage->GetDevice("disk"));

    StoredRowTable row_table(census.schema(), pool);
    CheckOk(row_table.LoadFrom(census));
    TransposedTable col_table(census.schema(), pool);
    CheckOk(col_table.LoadFrom(census));
    CheckOk(pool->FlushAll());
    CheckOk(pool->Reset());

    // Row store: records are packed ~45/page; a point read is 1 page.
    // (RecordIds are dense: row r lives in page r/records_per_page.)
    uint64_t per_page = rows / row_table.page_count() + 1;
    pool->ResetStats();
    disk->ResetStats();
    for (int i = 0; i < lookups; ++i) {
      uint64_t target = (uint64_t(i) * 9973) % rows;
      RecordId id{uint32_t(target / per_page), uint16_t(target % per_page)};
      // The slot guess may be off; this still touches exactly one page,
      // which is the quantity being measured.
      (void)row_table.ReadRecord(id);
    }
    uint64_t row_pages = pool->stats().misses;
    double row_ms = disk->stats().simulated_ms;

    CheckOk(pool->Reset());
    pool->ResetStats();
    disk->ResetStats();
    for (int i = 0; i < lookups; ++i) {
      uint64_t target = (uint64_t(i) * 9973) % rows;
      Unwrap(col_table.ReadRow(target));
    }
    uint64_t col_pages = pool->stats().misses;
    double col_ms = disk->stats().simulated_ms;

    std::printf("%12d | %12llu %12.1f | %12llu %12.1f\n", lookups,
                (unsigned long long)row_pages, row_ms,
                (unsigned long long)col_pages, col_ms);
  }
  std::printf(
      "\nshape check: transposed informational reads cost ~%zu pages"
      " (one per attribute) vs ~1 for the row store.\n",
      census.num_columns());
  return 0;
}

// E13 — Database machine support (§4.3).
// Claims: an associative disk suits Summary-Database search ("searches
// whose result sets are small"); near-device execution suits whole-
// column function computation; the host wins only at small sizes.

#include "bench/bench_util.h"
#include "machine/machine.h"

using namespace statdb;
using namespace statdb::bench;

int main() {
  Header("E13 bench_dbmachine",
         "host vs database-machine cost model across data sizes");

  DbMachineConfig cfg;

  std::printf("--- Summary Database search (result set: 3 records) ---\n");
  std::printf("%10s | %12s %14s %14s | %s\n", "pages", "host scan",
              "host indexed", "assoc. disk", "winner");
  for (uint64_t pages : {10ull, 100ull, 1000ull, 10000ull}) {
    uint64_t tuples = pages * 40;
    CostEstimate scan = HostSearchScan(cfg, pages, tuples);
    int height = pages < 100 ? 2 : pages < 5000 ? 3 : 4;
    CostEstimate indexed = HostSearchIndexed(cfg, height);
    CostEstimate assoc = MachineAssociativeSearch(cfg, pages, 3);
    const char* winner = indexed.total_ms <= assoc.total_ms
                             ? "host indexed"
                             : "assoc. disk";
    if (scan.total_ms < std::min(indexed.total_ms, assoc.total_ms)) {
      winner = "host scan";
    }
    std::printf("%10llu | %11.1f %13.1f %13.1f | %s\n",
                (unsigned long long)pages, scan.total_ms,
                indexed.total_ms, assoc.total_ms, winner);
  }

  std::printf("\n--- whole-column aggregate (function computation) ---\n");
  std::printf("%10s | %14s %16s %9s\n", "pages", "host scan ms",
              "machine offload", "speedup");
  for (uint64_t pages : {10ull, 100ull, 1000ull, 10000ull, 100000ull}) {
    uint64_t tuples = pages * 500;
    CostEstimate host = HostAggregateScan(cfg, pages, tuples);
    CostEstimate machine = MachineAggregateOffload(cfg, pages);
    std::printf("%10llu | %14.1f %16.1f %8.1fx\n",
                (unsigned long long)pages, host.total_ms,
                machine.total_ms, host.total_ms / machine.total_ms);
  }

  std::printf("\n--- sensitivity: slower host CPU favors offload ---\n");
  std::printf("%18s | %14s %16s\n", "us/tuple (host)", "host scan ms",
              "machine offload");
  for (double us : {0.5, 2.0, 8.0, 32.0}) {
    DbMachineConfig c = cfg;
    c.host_cpu_per_tuple_us = us;
    CostEstimate host = HostAggregateScan(c, 10000, 10000 * 500);
    CostEstimate machine = MachineAggregateOffload(c, 10000);
    std::printf("%18.1f | %14.1f %16.1f\n", us, host.total_ms,
                machine.total_ms);
  }
  std::printf(
      "\nshape check: indexed host probes beat one-revolution associative"
      " search for point lookups, the associative disk wins over"
      " unindexed scans, and offload wins for big scans — §4.3's"
      " qualitative picture.\n");
  return 0;
}
